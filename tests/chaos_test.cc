// Chaos soak for the serving stack: several RetryingClients hammer a
// TcpServer with mixed insert/knn/encode traffic while a conductor arms
// randomized socket faults (periodic injected errnos plus short reads and
// writes), one-shot WAL faults, and bounces the whole server — store closed,
// WAL replayed, same port — in the middle of the run.
//
// Invariants asserted, per ISSUE (overload-safe serving):
//   1. The process never dies and every client op reaches a terminal Status
//      (ok or error) — no hangs, no exhausted-retry loops that spin forever.
//   2. Acked inserts are durable: every id a client saw OK for is present in
//      the store reopened after the final shutdown (acked ⊆ store), and the
//      store holds nothing that was never attempted (store ⊆ attempted).
//   3. Replay determinism survives chaos: the reopened store's Save artifact
//      is byte-identical to a fault-free store built by inserting the same
//      ids (in the same order) with vectors from T2Vec::EncodeOne — the
//      service's encode path is bit-identical to EncodeOne by contract, so
//      any divergence means a fault corrupted a vector or reordered replay.
//
// The fault schedule derives from common/rng.h seeded with T2VEC_CHAOS_SEED
// (default 1): same seed, same chaos. tools/check.sh and CI run a small seed
// matrix so every gate exercises several schedules.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "serve/client.h"
#include "serve/durable_store.h"
#include "serve/server.h"
#include "traj/generator.h"

namespace t2vec::serve {
namespace {

using std::chrono::milliseconds;

constexpr int kClients = 4;
constexpr int kOpsPerClient = 24;

uint64_t ChaosSeed() {
  const char* env = std::getenv("T2VEC_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

class ChaosTest : public ::testing::Test {
 public:
  // Public (not the usual protected) so the free-function worker threads
  // below can share the fixture's model and trip pool.
  static const core::T2Vec& Model() {
    static core::T2Vec* model = [] {
      const eval::ExperimentData data =
          eval::MakeData(eval::DatasetKind::kPortoLike, 120, 0);
      core::T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      return new core::T2Vec(
          core::T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      return new traj::Dataset(generator.Generate(30));
    }();
    return *trips;
  }

  static std::string FreshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "chaos_test_" + name;
    (void)MakeDir(dir);
    std::remove((dir + "/store.snapshot").c_str());
    std::remove((dir + "/wal.log").c_str());
    return dir;
  }

  /// The trajectory a client inserts under `id` — recomputable from the id
  /// alone, which is what lets the fault-free rebuild reproduce the store.
  static traj::Trajectory TripFor(int64_t id) {
    traj::Trajectory trip =
        Trips()[static_cast<size_t>(id) % Trips().size()];
    trip.id = id;
    return trip;
  }

 protected:
  void TearDown() override { fault::DisarmAll(); }
};

struct WorkerReport {
  std::vector<int64_t> attempted;  ///< Insert ids put on the wire.
  std::vector<int64_t> acked;      ///< Insert ids the server answered OK.
  int terminal_ops = 0;            ///< Ops that returned any Status at all.
};

/// One client: a deterministic op mix (insert every third op, knn and
/// encode between) with generous retries — the point is to survive the
/// chaos, and every op must come back with *some* terminal answer.
void RunWorker(int index, uint16_t port, WorkerReport* report) {
  RetryOptions retry;
  retry.max_attempts = 10;
  retry.initial_backoff = milliseconds(10);
  retry.max_backoff = milliseconds(200);
  retry.jitter_seed = 100 + static_cast<uint64_t>(index);
  RetryingClient client("127.0.0.1", port, retry);
  for (int i = 0; i < kOpsPerClient; ++i) {
    const traj::Trajectory trip =
        ChaosTest::Trips()[static_cast<size_t>(index * 7 + i) %
                           ChaosTest::Trips().size()];
    switch (i % 3) {
      case 0: {
        const int64_t id = index * 1000 + i;
        report->attempted.push_back(id);
        Result<int64_t> inserted = client.Insert(ChaosTest::TripFor(id));
        if (inserted.ok()) report->acked.push_back(id);
        break;
      }
      case 1: {
        Result<EmbeddingStore::Neighbors> near =
            client.Knn(trip, 3, /*deadline_ms=*/10'000);
        (void)near;  // ok or terminal error — both acceptable under chaos.
        break;
      }
      default: {
        Result<std::vector<float>> vec = client.Encode(trip);
        (void)vec;
        break;
      }
    }
    ++report->terminal_ops;
  }
}

TEST_F(ChaosTest, ServingSurvivesSocketFaultsWalFaultsAndARestart) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("T2VEC_CHAOS_SEED=" + std::to_string(seed));
  Rng rng(seed);

  const std::string dir = FreshDir("soak_" + std::to_string(seed));
  Result<std::unique_ptr<DurableStore>> opened =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<DurableStore> store = std::move(opened).value();
  auto server = std::make_unique<TcpServer>(&Model(), store.get());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  std::vector<WorkerReport> reports(kClients);
  std::vector<std::thread> workers;
  workers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back(RunWorker, c, port, &reports[c]);
  }

  // The conductor (this thread): two fault phases around a full server
  // bounce. Sites and periods come from the seeded rng — deterministic per
  // seed, different across the seed matrix.
  const char* kNetSites[] = {"net.recv", "net.send", "net.recv.short",
                             "net.send.short", "net.connect"};
  const int kNetErrnos[] = {ECONNRESET, EPIPE, ETIMEDOUT, ECONNABORTED};
  for (int phase = 0; phase < 2; ++phase) {
    // Two or three periodic socket faults...
    const int sites = 2 + static_cast<int>(rng.UniformInt(2));
    for (int s = 0; s < sites; ++s) {
      const auto& site = kNetSites[rng.UniformInt(std::size(kNetSites))];
      fault::ArmEvery(site, 4 + rng.UniformInt(6),
                      kNetErrnos[rng.UniformInt(std::size(kNetErrnos))]);
    }
    // ...plus a one-shot WAL failure: some insert will be answered kIoError
    // without ever becoming durable, and the retrying client re-drives it.
    fault::Arm("wal.append", 1 + rng.UniformInt(4), EIO);
    fault::Arm("net.accept", 2 + rng.UniformInt(4), EMFILE);
    std::this_thread::sleep_for(milliseconds(400));
    // Disarm before touching the store: the restart's WAL replay must not
    // eat an injected fault meant for the serving path.
    fault::DisarmAll();

    if (phase == 0) {
      // Mid-run kill: drain the server, close the store (releasing the WAL
      // fd), replay it from disk, and come back on the same port while the
      // clients' retries ride out the outage.
      server.reset();
      store.reset();
      Result<std::unique_ptr<DurableStore>> reopened =
          DurableStore::Open(dir, Model().config().hidden);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      store = std::move(reopened).value();
      ServerOptions options;
      options.port = port;
      server = std::make_unique<TcpServer>(&Model(), store.get(), options);
      ASSERT_TRUE(server->Start().ok());
    }
  }

  for (std::thread& worker : workers) worker.join();
  fault::DisarmAll();

  // 1. Liveness: the server answered (with something) to the very end, and
  //    every op on every client reached a terminal Status.
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(reports[c].terminal_ops, kOpsPerClient) << "client " << c;
  }

  // Final shutdown + replay: this store is the ground truth below.
  server.reset();
  store.reset();
  Result<std::unique_ptr<DurableStore>> replayed =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const std::vector<int64_t> stored_ids = replayed.value()->Ids();
  const std::set<int64_t> stored(stored_ids.begin(), stored_ids.end());

  // 2. Acked ⊆ store: an OK insert means the WAL fsync happened, so no
  //    amount of socket chaos or restarting may lose it. Store ⊆ attempted:
  //    replay invented nothing (un-acked ids are allowed — a lost ack after
  //    the fsync — but unknown ids are corruption).
  std::set<int64_t> attempted;
  for (const WorkerReport& report : reports) {
    attempted.insert(report.attempted.begin(), report.attempted.end());
    for (int64_t id : report.acked) {
      EXPECT_TRUE(stored.count(id) > 0) << "acked insert lost: id " << id;
    }
  }
  for (int64_t id : stored_ids) {
    EXPECT_TRUE(attempted.count(id) > 0) << "store invented id " << id;
  }
  EXPECT_FALSE(stored_ids.empty());  // The soak must have landed something.

  // 3. Byte-identity: rebuild the same ids, in replay order, in a fresh
  //    fault-free store from EncodeOne vectors, and memcmp the two Save
  //    artifacts. This is the wal_test kill-and-replay contract extended
  //    across socket faults and a live restart.
  const std::string chaos_save = dir + "/chaos.save";
  ASSERT_TRUE(replayed.value()->SaveTo(chaos_save).ok());
  const std::string clean_dir =
      FreshDir("clean_" + std::to_string(seed));
  Result<std::unique_ptr<DurableStore>> clean =
      DurableStore::Open(clean_dir, Model().config().hidden);
  ASSERT_TRUE(clean.ok());
  for (int64_t id : stored_ids) {
    const std::vector<float> vec = Model().EncodeOne(TripFor(id));
    ASSERT_TRUE(clean.value()->Insert(id, vec).ok()) << "id " << id;
  }
  const std::string clean_save = clean_dir + "/clean.save";
  ASSERT_TRUE(clean.value()->SaveTo(clean_save).ok());
  std::string chaos_bytes;
  std::string clean_bytes;
  ASSERT_TRUE(ReadFileToString(chaos_save, &chaos_bytes).ok());
  ASSERT_TRUE(ReadFileToString(clean_save, &clean_bytes).ok());
  ASSERT_EQ(chaos_bytes.size(), clean_bytes.size());
  EXPECT_TRUE(chaos_bytes == clean_bytes)
      << "post-chaos replay diverged from the fault-free rebuild";
}

}  // namespace
}  // namespace t2vec::serve
