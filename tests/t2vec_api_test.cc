// API-contract tests of the high-level T2Vec type that do not need a
// converged model (training is capped at a handful of iterations): measure
// axioms, route-reconstruction output validity, encode shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/t2vec.h"
#include "eval/experiments.h"
#include "traj/generator.h"

namespace t2vec::core {
namespace {

class T2VecApiTest : public ::testing::Test {
 protected:
  static const T2Vec& Model() {
    static T2Vec* model = [] {
      const eval::ExperimentData data =
          eval::MakeData(eval::DatasetKind::kPortoLike, 120, 0);
      T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      return new T2Vec(T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      return new traj::Dataset(generator.Generate(12));
    }();
    return *trips;
  }
};

TEST_F(T2VecApiTest, DistanceAxioms) {
  const traj::Trajectory& a = Trips()[0];
  const traj::Trajectory& b = Trips()[1];
  EXPECT_NEAR(Model().Distance(a, a), 0.0, 1e-5);
  EXPECT_NEAR(Model().Distance(a, b), Model().Distance(b, a), 1e-5);
  EXPECT_GE(Model().Distance(a, b), 0.0);
}

TEST_F(T2VecApiTest, MeasureWrapperConsistent) {
  const T2VecMeasure measure(&Model());
  EXPECT_EQ(measure.Name(), "t2vec");
  const traj::Trajectory& a = Trips()[2];
  const traj::Trajectory& b = Trips()[3];
  EXPECT_DOUBLE_EQ(measure.Distance(a, b), Model().Distance(a, b));
}

TEST_F(T2VecApiTest, EncodeShapes) {
  const nn::Matrix vectors = Model().Encode(Trips().trajectories());
  EXPECT_EQ(vectors.rows(), Trips().size());
  EXPECT_EQ(vectors.cols(), Model().config().hidden);
  for (size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_TRUE(std::isfinite(vectors.data()[i]));
  }
  EXPECT_TRUE(Model().Encode({}).empty());
}

TEST_F(T2VecApiTest, EncodeOneMatchesBatchRow) {
  const std::vector<float> one = Model().EncodeOne(Trips()[4]);
  const nn::Matrix batch = Model().Encode({Trips()[4]});
  ASSERT_EQ(one.size(), batch.cols());
  for (size_t j = 0; j < one.size(); ++j) {
    EXPECT_NEAR(one[j], batch.At(0, j), 1e-6f);
  }
}

TEST_F(T2VecApiTest, ReconstructRouteYieldsHotCellCenters) {
  const traj::Trajectory route = Model().ReconstructRoute(Trips()[5]);
  const geo::HotCellVocab& vocab = Model().vocab();
  for (const geo::Point& p : route.points) {
    // Every decoded point is exactly the center of its own hot cell.
    const geo::Token token = vocab.TokenOf(p);
    EXPECT_EQ(vocab.CenterOf(token), p);
  }
}

TEST_F(T2VecApiTest, ReconstructRouteRespectsMaxLen) {
  const traj::Trajectory route = Model().ReconstructRoute(Trips()[6], 5);
  EXPECT_LE(route.size(), 5u);
}

TEST_F(T2VecApiTest, ConfigValidateAcceptsDefaults) {
  EXPECT_TRUE(T2VecConfig{}.Validate().ok());
  EXPECT_TRUE(Model().config().Validate().ok());
}

TEST_F(T2VecApiTest, ConfigValidateRejectsBadFields) {
  const auto expect_invalid = [](T2VecConfig config) {
    const Status status = config.Validate();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  };
  T2VecConfig c;
  c.hidden = 0;
  expect_invalid(c);
  c = {};
  c.learning_rate = 0.0;
  expect_invalid(c);
  c = {};
  c.cell_size = -10.0;
  expect_invalid(c);
  c = {};
  c.r1_grid = {0.5, 1.0};  // Rates must stay below 1.
  expect_invalid(c);
  c = {};
  c.batch_size = 0;
  expect_invalid(c);
}

TEST_F(T2VecApiTest, TrainCheckedRejectsInvalidInputsWithStatus) {
  T2VecConfig config;
  config.hidden = 0;
  Result<T2Vec> bad_config = T2Vec::TrainChecked(Trips().trajectories(),
                                                 config);
  ASSERT_FALSE(bad_config.ok());
  EXPECT_EQ(bad_config.status().code(), StatusCode::kInvalidArgument);

  Result<T2Vec> no_trips = T2Vec::TrainChecked({}, T2VecConfig{});
  ASSERT_FALSE(no_trips.ok());
  EXPECT_EQ(no_trips.status().code(), StatusCode::kInvalidArgument);

  Result<T2Vec> empty_trips =
      T2Vec::TrainChecked({traj::Trajectory{}, traj::Trajectory{}},
                          T2VecConfig{});
  ASSERT_FALSE(empty_trips.ok());
  EXPECT_EQ(empty_trips.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(T2VecApiTest, MeasureMemoizesEncodings) {
  const T2VecMeasure measure(&Model());
  const traj::Trajectory& a = Trips()[7];
  const traj::Trajectory& b = Trips()[8];
  const double first = measure.Distance(a, b);
  EXPECT_EQ(measure.cache_misses(), 2u);
  EXPECT_EQ(measure.cache_hits(), 0u);
  // Repeats hit the memo; the value stays bit-stable.
  const double second = measure.Distance(a, b);
  EXPECT_EQ(measure.cache_misses(), 2u);
  EXPECT_EQ(measure.cache_hits(), 2u);
  EXPECT_EQ(first, second);
  measure.Distance(b, a);
  EXPECT_EQ(measure.cache_misses(), 2u);
  EXPECT_EQ(measure.cache_hits(), 4u);
}

TEST_F(T2VecApiTest, MeasureMemoEvictsAtCapacity) {
  const T2VecMeasure measure(&Model(), /*capacity=*/2);
  measure.Distance(Trips()[0], Trips()[1]);  // Memo: {0, 1}.
  EXPECT_EQ(measure.cache_misses(), 2u);
  measure.Distance(Trips()[2], Trips()[3]);  // Evicts 0 and 1.
  EXPECT_EQ(measure.cache_misses(), 4u);
  measure.Distance(Trips()[0], Trips()[1]);  // Re-encodes both.
  EXPECT_EQ(measure.cache_misses(), 6u);
  EXPECT_EQ(measure.cache_hits(), 0u);
}

TEST_F(T2VecApiTest, LoadRejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/garbage.t2vec";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a model", f);
  std::fclose(f);
  Result<T2Vec> r = T2Vec::Load(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace t2vec::core
