// Robustness tests for the serving-path WAL (serve/wal.h) and the
// WAL-backed DurableStore (serve/durable_store.h): framing round trips,
// torn-tail cuts at every byte offset, bit flips, injected I/O faults on
// the append/replay/compact path, and the headline crash contract — a store
// killed mid-ingestion and reopened is byte-identical to one that was never
// interrupted.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "serve/durable_store.h"
#include "serve/wal.h"

namespace t2vec::serve {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }

  /// A fresh per-test scratch directory.
  std::string Dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "wal_test_" + name;
    (void)MakeDir(dir);
    return dir;
  }

  static std::vector<float> MakeVec(size_t dim, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(dim);
    for (float& x : v) x = static_cast<float>(rng.Gaussian());
    return v;
  }

  static std::string FileBytes(const std::string& path) {
    std::string data;
    EXPECT_TRUE(ReadFileToString(path, &data).ok()) << path;
    return data;
  }

  /// Replays `path` collecting the raw payloads.
  static Result<WalReplayStats> Collect(const std::string& path,
                                        std::vector<std::string>* payloads) {
    return ReplayWal(path, [payloads](std::string_view payload) {
      payloads->emplace_back(payload);
      return Status::Ok();
    });
  }
};

TEST_F(WalTest, RoundTripsRecordsInWriteOrder) {
  const std::string path = Dir("roundtrip") + "/wal.log";
  std::remove(path.c_str());
  const std::vector<std::string> records = {"alpha", "", "gamma gamma",
                                            std::string(1000, 'x')};
  {
    WalWriter writer(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& r : records) {
      ASSERT_TRUE(writer.Append(r).ok());
    }
    EXPECT_EQ(writer.size_bytes(),
              kWalHeaderBytes + 4 * kWalRecordOverhead + 5 + 0 + 11 + 1000);
  }
  std::vector<std::string> replayed;
  Result<WalReplayStats> stats = Collect(path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(replayed, records);
  EXPECT_EQ(stats.value().records, records.size());
  EXPECT_FALSE(stats.value().torn_tail);
  EXPECT_EQ(stats.value().valid_bytes, FileBytes(path).size());
}

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  std::vector<std::string> replayed;
  Result<WalReplayStats> stats =
      Collect(Dir("missing") + "/nonexistent.log", &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records, 0u);
  EXPECT_FALSE(stats.value().torn_tail);
  EXPECT_TRUE(replayed.empty());
}

TEST_F(WalTest, ReopeningResumesAppending) {
  const std::string path = Dir("reopen") + "/wal.log";
  std::remove(path.c_str());
  {
    WalWriter writer(path);
    ASSERT_TRUE(writer.Append("first").ok());
  }
  {
    WalWriter writer(path);  // Must not re-stamp the header.
    ASSERT_TRUE(writer.Append("second").ok());
  }
  std::vector<std::string> replayed;
  ASSERT_TRUE(Collect(path, &replayed).ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"first", "second"}));
}

// The crash model: a torn tail is a prefix cut of the file. Every possible
// cut must replay cleanly to the intact prefix, and truncating to the
// reported valid_bytes must yield a tail-free log.
TEST_F(WalTest, PrefixCutAtEveryByteReplaysCleanly) {
  const std::string dir = Dir("cuts");
  const std::string full_path = dir + "/wal.log";
  std::remove(full_path.c_str());
  const std::vector<std::string> records = {"one", "twotwo", "three-three"};
  {
    WalWriter writer(full_path);
    for (const std::string& r : records) ASSERT_TRUE(writer.Append(r).ok());
  }
  const std::string full = FileBytes(full_path);

  // Complete-record boundaries, to know the expected intact prefix per cut.
  std::vector<size_t> boundaries = {kWalHeaderBytes};
  for (const std::string& r : records) {
    boundaries.push_back(boundaries.back() + kWalRecordOverhead + r.size());
  }

  const std::string cut_path = dir + "/cut.log";
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(cut_path, full.substr(0, cut)).ok());
    std::vector<std::string> replayed;
    Result<WalReplayStats> stats = Collect(cut_path, &replayed);
    ASSERT_TRUE(stats.ok()) << "cut at " << cut << ": "
                            << stats.status().ToString();
    size_t expected_records = 0;
    while (expected_records < records.size() &&
           boundaries[expected_records + 1] <= cut) {
      ++expected_records;
    }
    EXPECT_EQ(replayed.size(), expected_records) << "cut at " << cut;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i], records[i]) << "cut at " << cut;
    }
    // Torn iff the cut lands inside a record (or inside the header): cut 0
    // is an empty file, and a cut exactly on a boundary is a clean log.
    const bool expect_torn =
        cut != 0 && cut != boundaries[expected_records];
    EXPECT_EQ(stats.value().torn_tail, expect_torn) << "cut at " << cut;
    // Trimming to valid_bytes then replaying must be tail-free with the
    // same records — this is exactly what DurableStore::Open does.
    if (stats.value().torn_tail) {
      ASSERT_TRUE(TruncateFile(cut_path, stats.value().valid_bytes).ok());
      std::vector<std::string> trimmed;
      Result<WalReplayStats> again = Collect(cut_path, &trimmed);
      ASSERT_TRUE(again.ok());
      EXPECT_FALSE(again.value().torn_tail) << "cut at " << cut;
      EXPECT_EQ(trimmed.size(), expected_records) << "cut at " << cut;
    }
  }
}

TEST_F(WalTest, BitFlipStopsReplayAtTheCorruptRecord) {
  const std::string path = Dir("bitflip") + "/wal.log";
  std::remove(path.c_str());
  {
    WalWriter writer(path);
    ASSERT_TRUE(writer.Append("record zero").ok());
    ASSERT_TRUE(writer.Append("record one").ok());
  }
  std::string bytes = FileBytes(path);
  // Flip a payload byte of the second record.
  const size_t victim =
      kWalHeaderBytes + kWalRecordOverhead + 11 + kWalRecordOverhead + 3;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());

  std::vector<std::string> replayed;
  Result<WalReplayStats> stats = Collect(path, &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"record zero"}));
  EXPECT_TRUE(stats.value().torn_tail);
}

TEST_F(WalTest, BadMagicIsAHardError) {
  const std::string path = Dir("badmagic") + "/wal.log";
  ASSERT_TRUE(WriteFileAtomic(path, "XXXXYYYY not a wal at all").ok());
  std::vector<std::string> replayed;
  EXPECT_FALSE(Collect(path, &replayed).ok());
}

TEST_F(WalTest, InjectedAppendFaultLeavesLogUntouched) {
  const std::string path = Dir("fault_append") + "/wal.log";
  std::remove(path.c_str());
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("kept").ok());
  const uint64_t size_before = writer.size_bytes();

  fault::Arm("wal.append", 1, EIO);
  const Status failed = writer.Append("lost");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(writer.size_bytes(), size_before);
  // The wal.append site fires before any byte is written, so the writer is
  // not poisoned: the next append must succeed and replay must see both
  // surviving records.
  ASSERT_TRUE(writer.Append("after").ok());
  std::vector<std::string> replayed;
  ASSERT_TRUE(Collect(path, &replayed).ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"kept", "after"}));
}

TEST_F(WalTest, InjectedWriteFaultMakesWriterInert) {
  const std::string path = Dir("fault_write") + "/wal.log";
  std::remove(path.c_str());
  WalWriter writer(path);
  ASSERT_TRUE(writer.Append("ok").ok());
  fault::Arm("fs.append.write", 1, ENOSPC);
  EXPECT_FALSE(writer.Append("doomed").ok());
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.Append("still doomed").ok());  // First error sticks.
}

TEST_F(WalTest, InsertRecordCodecRoundTripsAndFailsSoft) {
  const std::vector<float> vec = MakeVec(16, 42);
  const std::string payload = EncodeInsertRecord(77, vec);
  int64_t id = 0;
  std::vector<float> decoded;
  ASSERT_TRUE(DecodeInsertRecord(payload, &id, &decoded).ok());
  EXPECT_EQ(id, 77);
  EXPECT_EQ(decoded, vec);

  // Truncations and length mismatches fail with Status, never abort.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeInsertRecord(payload.substr(0, cut), &id, &decoded).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeInsertRecord(payload + "x", &id, &decoded).ok());
}

// --- DurableStore ---------------------------------------------------------

TEST_F(WalTest, DurableStoreReopenIsByteIdenticalToUninterrupted) {
  const size_t kDim = 8;
  const std::string dir = Dir("identity");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());

  const std::string live_snap = dir + "/live.cmp";
  {
    Result<std::unique_ptr<DurableStore>> store =
        DurableStore::Open(dir, kDim);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int64_t id = 0; id < 12; ++id) {
      ASSERT_TRUE(
          store.value()
              ->Insert(id, MakeVec(kDim, static_cast<uint64_t>(id)))
              .ok());
    }
    ASSERT_TRUE(store.value()->SaveTo(live_snap).ok());
    // "Kill": the store is dropped with a populated WAL and no compaction.
  }
  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 12u);
  const std::string replayed_snap = dir + "/replayed.cmp";
  ASSERT_TRUE(reopened.value()->SaveTo(replayed_snap).ok());
  EXPECT_EQ(FileBytes(live_snap), FileBytes(replayed_snap));
}

TEST_F(WalTest, DurableStoreKilledMidIngestionServesAckedPrefix) {
  const size_t kDim = 6;
  const std::string dir = Dir("midkill");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  {
    Result<std::unique_ptr<DurableStore>> store =
        DurableStore::Open(dir, kDim);
    ASSERT_TRUE(store.ok());
    for (int64_t id = 0; id < 5; ++id) {
      ASSERT_TRUE(
          store.value()
              ->Insert(id, MakeVec(kDim, static_cast<uint64_t>(id)))
              .ok());
    }
    // The 6th insert dies at the WAL site: the client gets an error, so the
    // acknowledged prefix is exactly ids 0..4.
    fault::Arm("wal.append", 1, EIO);
    EXPECT_FALSE(store.value()->Insert(5, MakeVec(kDim, 5)).ok());
    fault::DisarmAll();
    EXPECT_EQ(store.value()->size(), 5u);
  }
  // Simulate the torn half-written record the crash would have left.
  {
    AppendOnlyFile wal(dir + "/wal.log");
    ASSERT_TRUE(wal.Append("\x13\x00\x00\x00garbage", 11).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 5u);
  for (int64_t id = 0; id < 5; ++id) {
    EXPECT_EQ(reopened.value()->Find(id),
              MakeVec(kDim, static_cast<uint64_t>(id)));
  }
  // The torn tail was trimmed, so appending works and survives reopen.
  ASSERT_TRUE(reopened.value()->Insert(5, MakeVec(kDim, 5)).ok());
  reopened.value().reset();
  Result<std::unique_ptr<DurableStore>> again = DurableStore::Open(dir, kDim);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->size(), 6u);
}

TEST_F(WalTest, CompactionFoldsWalIntoSnapshot) {
  const size_t kDim = 4;
  const std::string dir = Dir("compact");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<DurableStore>> store = DurableStore::Open(dir, kDim);
  ASSERT_TRUE(store.ok());
  for (int64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store.value()
                    ->Insert(id, MakeVec(kDim, static_cast<uint64_t>(id)))
                    .ok());
  }
  const uint64_t wal_before = store.value()->wal_bytes();
  ASSERT_TRUE(store.value()->Compact().ok());
  EXPECT_EQ(store.value()->compactions(), 1);
  EXPECT_LT(store.value()->wal_bytes(), wal_before);
  EXPECT_EQ(store.value()->wal_bytes(), kWalHeaderBytes);
  EXPECT_TRUE(FileExists(dir + "/store.snapshot"));

  // Post-compaction inserts land in the fresh WAL; reopen sees snapshot +
  // new records.
  ASSERT_TRUE(store.value()->Insert(100, MakeVec(kDim, 100)).ok());
  const std::string before = dir + "/before.cmp";
  ASSERT_TRUE(store.value()->SaveTo(before).ok());
  store.value().reset();
  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), 9u);
  const std::string after = dir + "/after.cmp";
  ASSERT_TRUE(reopened.value()->SaveTo(after).ok());
  EXPECT_EQ(FileBytes(before), FileBytes(after));
}

// A crash between the snapshot commit and the WAL truncate leaves every
// WAL record duplicated by the snapshot; replay must skip them.
TEST_F(WalTest, CrashBetweenSnapshotAndTruncateIsIdempotent) {
  const size_t kDim = 4;
  const std::string dir = Dir("compact_crash");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<DurableStore>> store = DurableStore::Open(dir, kDim);
  ASSERT_TRUE(store.ok());
  for (int64_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.value()
                    ->Insert(id, MakeVec(kDim, static_cast<uint64_t>(id)))
                    .ok());
  }
  const std::string expected = dir + "/expected.cmp";
  ASSERT_TRUE(store.value()->SaveTo(expected).ok());

  // Injected fault: the snapshot is written, the truncate never happens —
  // exactly the crash window.
  fault::Arm("wal.compact.truncate", 1, EIO);
  EXPECT_FALSE(store.value()->Compact().ok());
  fault::DisarmAll();
  EXPECT_EQ(store.value()->compactions(), 0);
  EXPECT_TRUE(FileExists(dir + "/store.snapshot"));
  EXPECT_GT(store.value()->wal_bytes(), kWalHeaderBytes);
  // Serving continues on the intact store.
  EXPECT_EQ(store.value()->size(), 6u);
  store.value().reset();

  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 6u);  // Not 12: replay skipped dups.
  const std::string actual = dir + "/actual.cmp";
  ASSERT_TRUE(reopened.value()->SaveTo(actual).ok());
  EXPECT_EQ(FileBytes(expected), FileBytes(actual));
}

TEST_F(WalTest, SnapshotFaultLeavesWalAuthoritative) {
  const size_t kDim = 4;
  const std::string dir = Dir("snap_fault");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<DurableStore>> store = DurableStore::Open(dir, kDim);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Insert(1, MakeVec(kDim, 1)).ok());

  fault::Arm("wal.compact.snapshot", 1, ENOSPC);
  EXPECT_FALSE(store.value()->Compact().ok());
  fault::DisarmAll();
  EXPECT_FALSE(FileExists(dir + "/store.snapshot"));
  store.value().reset();

  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), 1u);
}

TEST_F(WalTest, InvalidInsertsNeverReachTheWal) {
  const size_t kDim = 4;
  const std::string dir = Dir("invalid");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  Result<std::unique_ptr<DurableStore>> store = DurableStore::Open(dir, kDim);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Insert(1, MakeVec(kDim, 1)).ok());
  const uint64_t wal_after_valid = store.value()->wal_bytes();

  EXPECT_EQ(store.value()->Insert(1, MakeVec(kDim, 2)).code(),
            StatusCode::kInvalidArgument);  // Duplicate id.
  EXPECT_EQ(store.value()->Insert(2, MakeVec(kDim + 1, 3)).code(),
            StatusCode::kInvalidArgument);  // Dimension mismatch.
  EXPECT_EQ(store.value()->wal_bytes(), wal_after_valid);
  EXPECT_EQ(store.value()->size(), 1u);
}

TEST_F(WalTest, BackgroundCompactionTriggersOnWalGrowth) {
  const size_t kDim = 8;
  const std::string dir = Dir("bg_compact");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  DurableStoreOptions options;
  options.compact_after_bytes = 256;  // A handful of records.
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, kDim, options);
  ASSERT_TRUE(store.ok());
  for (int64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store.value()
                    ->Insert(id, MakeVec(kDim, static_cast<uint64_t>(id)))
                    .ok());
  }
  // The compactor runs asynchronously; poll briefly for it to land.
  for (int spin = 0; spin < 200 && store.value()->compactions() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(store.value()->compactions(), 1);
  EXPECT_TRUE(FileExists(dir + "/store.snapshot"));
  EXPECT_EQ(store.value()->size(), 32u);
  store.value().reset();

  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), 32u);
}

TEST_F(WalTest, ReplayFaultSurfacesAsCleanOpenFailure) {
  const size_t kDim = 4;
  const std::string dir = Dir("replay_fault");
  std::remove((dir + "/store.snapshot").c_str());
  std::remove((dir + "/wal.log").c_str());
  {
    Result<std::unique_ptr<DurableStore>> store =
        DurableStore::Open(dir, kDim);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Insert(1, MakeVec(kDim, 1)).ok());
  }
  fault::Arm("wal.replay", 1, EIO);
  Result<std::unique_ptr<DurableStore>> failed = DurableStore::Open(dir, kDim);
  EXPECT_FALSE(failed.ok());
  fault::DisarmAll();
  // The failure is clean: the log is intact and the next open succeeds.
  Result<std::unique_ptr<DurableStore>> retried =
      DurableStore::Open(dir, kDim);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value()->size(), 1u);
}

}  // namespace
}  // namespace t2vec::serve
