#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "traj/simplify.h"

namespace t2vec::traj {
namespace {

TEST(DouglasPeuckerTest, CollinearCollapsesToEndpoints) {
  Trajectory t;
  for (int i = 0; i < 20; ++i) t.points.push_back({i * 50.0, 0.0});
  const Trajectory s = DouglasPeucker(t, 1.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.points.front(), t.points.front());
  EXPECT_EQ(s.points.back(), t.points.back());
}

TEST(DouglasPeuckerTest, KeepsCorner) {
  Trajectory t;
  for (int i = 0; i <= 10; ++i) t.points.push_back({i * 100.0, 0.0});
  for (int i = 1; i <= 10; ++i) t.points.push_back({1000.0, i * 100.0});
  const Trajectory s = DouglasPeucker(t, 5.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.points[1], (geo::Point{1000.0, 0.0}));
}

TEST(DouglasPeuckerTest, ZeroEpsilonKeepsAllNonCollinear) {
  Rng rng(1);
  Trajectory t;
  geo::Point p{0, 0};
  for (int i = 0; i < 30; ++i) {
    p.x += rng.Uniform(20, 120);
    p.y += rng.Uniform(-100, 100);
    t.points.push_back(p);
  }
  const Trajectory s = DouglasPeucker(t, 0.0);
  EXPECT_EQ(s.size(), t.size());
}

TEST(DouglasPeuckerTest, ShortInputsUntouched) {
  Trajectory two;
  two.points = {{0, 0}, {100, 100}};
  EXPECT_EQ(DouglasPeucker(two, 10.0).points, two.points);
  Trajectory one;
  one.points = {{5, 5}};
  EXPECT_EQ(DouglasPeucker(one, 10.0).points, one.points);
}

class DeviationBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(DeviationBoundTest, DeviationNeverExceedsEpsilon) {
  // The defining Douglas-Peucker guarantee, checked over random walks for a
  // sweep of epsilon values.
  const double epsilon = GetParam();
  Rng rng(static_cast<uint64_t>(epsilon * 10) + 3);
  for (int trial = 0; trial < 10; ++trial) {
    Trajectory t;
    geo::Point p{0, 0};
    for (int i = 0; i < 80; ++i) {
      p.x += rng.Uniform(-80, 150);
      p.y += rng.Uniform(-120, 120);
      t.points.push_back(p);
    }
    const Trajectory s = DouglasPeucker(t, epsilon);
    EXPECT_LE(MaxDeviation(t, s), epsilon + 1e-9);
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), t.size());
    // Monotonic: larger epsilon, no more points.
    const Trajectory s2 = DouglasPeucker(t, epsilon * 2.0 + 1.0);
    EXPECT_LE(s2.size(), s.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DeviationBoundTest,
                         ::testing::Values(5.0, 20.0, 50.0, 150.0, 400.0));

TEST(MaxDeviationTest, ZeroForIdentical) {
  Trajectory t;
  for (int i = 0; i < 5; ++i) t.points.push_back({i * 10.0, i * 5.0});
  EXPECT_DOUBLE_EQ(MaxDeviation(t, t), 0.0);
}

}  // namespace
}  // namespace t2vec::traj
