#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "common/rng.h"
#include "traj/dataset.h"
#include "traj/generator.h"
#include "traj/road_network.h"
#include "traj/tokenizer.h"
#include "traj/trajectory.h"
#include "traj/transforms.h"

namespace t2vec::traj {
namespace {

Trajectory MakeLine(int n, double step = 100.0) {
  Trajectory t;
  t.id = 1;
  for (int i = 0; i < n; ++i) {
    t.points.push_back({i * step, 0.0});
  }
  return t;
}

TEST(TrajectoryTest, Length) {
  const Trajectory t = MakeLine(5, 100.0);
  EXPECT_DOUBLE_EQ(t.Length(), 400.0);
  EXPECT_EQ(t.size(), 5u);
  Trajectory empty;
  EXPECT_DOUBLE_EQ(empty.Length(), 0.0);
}

TEST(DatasetTest, Stats) {
  Dataset d;
  d.Add(MakeLine(10));
  d.Add(MakeLine(20));
  EXPECT_EQ(d.TotalPoints(), 30);
  EXPECT_DOUBLE_EQ(d.MeanLength(), 15.0);
}

TEST(DatasetTest, Split) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Trajectory t = MakeLine(3);
    t.id = i;
    d.Add(std::move(t));
  }
  Dataset train, test;
  d.Split(7, &train, &test);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_EQ(train[0].id, 0);
  EXPECT_EQ(test[0].id, 7);
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  Dataset d;
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    Trajectory t;
    t.id = 100 + i;
    for (int j = 0; j < 8; ++j) {
      t.points.push_back({rng.Uniform(-1e4, 1e4), rng.Uniform(-1e4, 1e4)});
    }
    d.Add(std::move(t));
  }
  const std::string path = ::testing::TempDir() + "/dataset_test.txt";
  ASSERT_TRUE(d.Save(path).ok());
  Result<Dataset> loaded = Dataset::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].id, d[i].id);
    ASSERT_EQ(loaded.value()[i].size(), d[i].size());
    for (size_t j = 0; j < d[i].size(); ++j) {
      EXPECT_NEAR(loaded.value()[i].points[j].x, d[i].points[j].x, 1e-6);
      EXPECT_NEAR(loaded.value()[i].points[j].y, d[i].points[j].y, 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadMissingFileFails) {
  Result<Dataset> r = Dataset::Load("/nonexistent/file.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(RoadNetworkTest, BasicStructure) {
  RoadNetworkConfig config;
  config.region_width = 2000;
  config.region_height = 2000;
  config.node_spacing = 500;
  RoadNetwork network(config);
  EXPECT_EQ(network.num_nodes(), 25u);  // 5 x 5 lattice.
  EXPECT_GT(network.num_edges(), 0u);
}

TEST(RoadNetworkTest, RoutesFollowEdges) {
  RoadNetworkConfig config;
  config.region_width = 3000;
  config.region_height = 3000;
  config.node_spacing = 500;
  config.position_jitter = 50;
  RoadNetwork network(config);
  Rng rng(7);
  const auto route = network.SampleRoute(2000.0, rng);
  ASSERT_GE(route.size(), 2u);
  // Consecutive route nodes are graph neighbors: within ~1.5 lattice steps
  // (diagonals + jitter).
  for (size_t i = 1; i < route.size(); ++i) {
    EXPECT_LT(geo::Distance(route[i - 1], route[i]), 500.0 * 1.7);
    EXPECT_GT(geo::Distance(route[i - 1], route[i]), 0.0);
  }
  // Total length reaches the target.
  double total = 0.0;
  for (size_t i = 1; i < route.size(); ++i) {
    total += geo::Distance(route[i - 1], route[i]);
  }
  EXPECT_GE(total, 2000.0);
}

TEST(RoadNetworkTest, StartNodesAreSkewed) {
  RoadNetworkConfig config;
  config.region_width = 3000;
  config.region_height = 3000;
  config.node_spacing = 500;
  RoadNetwork network(config);
  Rng rng(11);
  std::vector<int> counts(network.num_nodes(), 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) counts[network.SampleStartNode(rng)]++;
  // Heavy-tailed hubs: the most popular node should receive far more than
  // the uniform share.
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 3 * draws / static_cast<int>(network.num_nodes()));
}

TEST(SampleAlongPolylineTest, SpacingRespected) {
  const std::vector<geo::Point> route = {{0, 0}, {1000, 0}};
  const auto samples = SampleAlongPolyline(route, 100.0);
  ASSERT_EQ(samples.size(), 11u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].x, 100.0 * static_cast<double>(i), 1e-9);
  }
}

TEST(SampleAlongPolylineTest, SpacingAcrossVertices) {
  // Spacing carries over polyline vertices.
  const std::vector<geo::Point> route = {{0, 0}, {150, 0}, {150, 150}};
  const auto samples = SampleAlongPolyline(route, 100.0);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_NEAR(samples[1].x, 100.0, 1e-9);
  EXPECT_NEAR(samples[2].x, 150.0, 1e-9);
  EXPECT_NEAR(samples[2].y, 50.0, 1e-9);
  EXPECT_NEAR(samples[3].y, 150.0, 1e-9);
}

TEST(GeneratorTest, TripLengthBounds) {
  traj::GeneratorConfig config = traj::GeneratorConfig::PortoLike();
  SyntheticTrajectoryGenerator generator(config);
  Dataset trips = generator.Generate(50);
  ASSERT_EQ(trips.size(), 50u);
  for (size_t i = 0; i < trips.size(); ++i) {
    EXPECT_GE(static_cast<int>(trips[i].size()), config.min_trip_points);
    EXPECT_LE(static_cast<int>(trips[i].size()), config.max_trip_points);
    EXPECT_EQ(trips[i].id, static_cast<int64_t>(i));
  }
}

TEST(GeneratorTest, Deterministic) {
  traj::GeneratorConfig config = traj::GeneratorConfig::PortoLike();
  SyntheticTrajectoryGenerator a(config), b(config);
  Dataset da = a.Generate(5), db = b.Generate(5);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(da[i].size(), db[i].size());
    for (size_t j = 0; j < da[i].size(); ++j) {
      EXPECT_EQ(da[i].points[j], db[i].points[j]);
    }
  }
}

TEST(GeneratorTest, ConsecutiveSpacingMatchesSpeedModel) {
  traj::GeneratorConfig config = traj::GeneratorConfig::PortoLike();
  config.gps_noise_m = 0.0;
  SyntheticTrajectoryGenerator generator(config);
  std::vector<geo::Point> route;
  const Trajectory trip = generator.GenerateOne(0, &route);
  // Consecutive points are at most interval * max_speed apart (route turns
  // can only shorten the straight-line distance).
  const double max_gap = config.report_interval_s * config.max_speed_mps;
  for (size_t i = 1; i < trip.size(); ++i) {
    EXPECT_LE(geo::Distance(trip.points[i - 1], trip.points[i]),
              max_gap + 1e-6);
  }
}

TEST(GeneratorTest, RouteIsReturnedAndCoversTrip) {
  traj::GeneratorConfig config = traj::GeneratorConfig::PortoLike();
  config.gps_noise_m = 0.0;
  SyntheticTrajectoryGenerator generator(config);
  std::vector<geo::Point> route;
  const Trajectory trip = generator.GenerateOne(0, &route);
  ASSERT_GE(route.size(), 2u);
  // Every noise-free sample lies on the route polyline.
  for (const geo::Point& p : trip.points) {
    double best = 1e18;
    for (size_t i = 1; i < route.size(); ++i) {
      best = std::min(best,
                      geo::DistanceToSegment(p, route[i - 1], route[i]));
    }
    EXPECT_LT(best, 1e-6);
  }
}

TEST(DownsampleTest, KeepsEndpoints) {
  const Trajectory t = MakeLine(50);
  Rng rng(1);
  const Trajectory d = Downsample(t, 0.9, rng);
  ASSERT_GE(d.size(), 2u);
  EXPECT_EQ(d.points.front(), t.points.front());
  EXPECT_EQ(d.points.back(), t.points.back());
  EXPECT_EQ(d.id, t.id);
}

TEST(DownsampleTest, RateZeroIsIdentity) {
  const Trajectory t = MakeLine(20);
  Rng rng(2);
  const Trajectory d = Downsample(t, 0.0, rng);
  EXPECT_EQ(d.points, t.points);
}

TEST(DownsampleTest, DropFractionApproximatesRate) {
  const Trajectory t = MakeLine(2000);
  Rng rng(3);
  const Trajectory d = Downsample(t, 0.4, rng);
  // Interior points: 1998, expect ~60% kept.
  const double kept =
      static_cast<double>(d.size() - 2) / static_cast<double>(t.size() - 2);
  EXPECT_NEAR(kept, 0.6, 0.05);
}

TEST(DownsampleTest, PreservesOrder) {
  const Trajectory t = MakeLine(100);
  Rng rng(4);
  const Trajectory d = Downsample(t, 0.5, rng);
  for (size_t i = 1; i < d.size(); ++i) {
    EXPECT_GT(d.points[i].x, d.points[i - 1].x);
  }
}

TEST(DistortTest, FractionAndMagnitude) {
  const Trajectory t = MakeLine(5000);
  Rng rng(5);
  const Trajectory d = Distort(t, 0.3, rng);
  ASSERT_EQ(d.size(), t.size());
  int moved = 0;
  double max_shift = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    const double shift = geo::Distance(t.points[i], d.points[i]);
    if (shift > 0.0) ++moved;
    max_shift = std::max(max_shift, shift);
  }
  EXPECT_NEAR(moved / 5000.0, 0.3, 0.03);
  // Gaussian with radius 30 m per axis: shifts of several tens of meters.
  EXPECT_GT(max_shift, 30.0);
  EXPECT_LT(max_shift, 30.0 * 12.0);  // Far tail is astronomically unlikely.
}

TEST(DistortTest, RateZeroIsIdentity) {
  const Trajectory t = MakeLine(10);
  Rng rng(6);
  EXPECT_EQ(Distort(t, 0.0, rng).points, t.points);
}

TEST(AlternatingSplitTest, InterleavesExactly) {
  const Trajectory t = MakeLine(7);
  auto [odd, even] = AlternatingSplit(t);
  EXPECT_EQ(odd.size(), 4u);
  EXPECT_EQ(even.size(), 3u);
  EXPECT_EQ(odd.points[0].x, 0.0);
  EXPECT_EQ(odd.points[1].x, 200.0);
  EXPECT_EQ(even.points[0].x, 100.0);
  EXPECT_EQ(even.points[2].x, 500.0);
  EXPECT_EQ(odd.id, t.id);
  EXPECT_EQ(even.id, t.id);
}

TEST(TokenizerTest, MapsPointsToHotCells) {
  geo::SpatialGrid grid({0, 0}, {1000, 100}, 100.0);
  std::vector<geo::Point> points;
  for (int c = 0; c < 10; ++c) {
    const geo::Point center = grid.CenterOf(grid.CellAt(0, c));
    points.push_back(center);
    points.push_back(center);
  }
  geo::HotCellVocab vocab(grid, points, 2);
  const Trajectory t = MakeLine(10, 100.0);  // One point per cell.
  const TokenSeq seq = Tokenize(vocab, t);
  ASSERT_EQ(seq.size(), 10u);
  std::set<geo::Token> unique(seq.begin(), seq.end());
  EXPECT_EQ(unique.size(), 10u);  // All distinct cells.
  for (geo::Token tok : seq) {
    EXPECT_FALSE(geo::HotCellVocab::IsSpecial(tok));
  }
}

}  // namespace
}  // namespace t2vec::traj
