// Numerical-stability and stress tests of the nn substrate: long-sequence
// GRU behaviour, extreme activations, optimizer robustness. These guard the
// training loop against the classic RNN failure modes (explosion, NaN
// poisoning) that the paper counters with gradient clipping.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/gru.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/optimizer.h"

namespace t2vec::nn {
namespace {

bool AllFinite(const Matrix& m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

TEST(GruStabilityTest, LongSequenceForwardStaysBounded) {
  Rng rng(1);
  Gru gru("gru", 8, 16, 2, rng);
  std::vector<Matrix> xs(300);
  for (Matrix& x : xs) {
    x.Resize(4, 8);
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.Uniform(-2, 2));
    }
  }
  Gru::ForwardResult result;
  gru.Forward(xs, nullptr, {}, &result);
  for (const Matrix& h : result.final_state.h) {
    ASSERT_TRUE(AllFinite(h));
    for (size_t i = 0; i < h.size(); ++i) {
      EXPECT_LT(std::fabs(h.data()[i]), 1.0f);  // GRU state is bounded.
    }
  }
}

TEST(GruStabilityTest, LongSequenceBackwardFiniteAfterClipping) {
  Rng rng(2);
  Gru gru("gru", 6, 12, 2, rng);
  const size_t steps = 200, batch = 3;
  std::vector<Matrix> xs(steps);
  for (Matrix& x : xs) {
    x.Resize(batch, 6);
    for (size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
    }
  }
  Gru::ForwardResult result;
  gru.Forward(xs, nullptr, {}, &result);
  // Large upstream gradient on the final state only.
  GruState d_final;
  for (size_t l = 0; l < 2; ++l) {
    d_final.h.emplace_back(batch, 12);
    d_final.h.back().Fill(10.0f);
  }
  for (Parameter* p : gru.Params()) p->ZeroGrad();
  std::vector<Matrix> d_xs;
  gru.Backward(xs, nullptr, {}, result, nullptr, &d_final, &d_xs, nullptr);
  for (Parameter* p : gru.Params()) {
    ASSERT_TRUE(AllFinite(p->grad)) << p->name;
  }
  // Clipping yields exactly the requested global norm for huge gradients.
  const double pre = ClipGradNorm(gru.Params(), 5.0);
  if (pre > 5.0) {
    double sq = 0.0;
    for (Parameter* p : gru.Params()) sq += p->grad.SquaredNorm();
    EXPECT_NEAR(std::sqrt(sq), 5.0, 1e-3);
  }
}

TEST(OpsStabilityTest, SoftmaxHandlesExtremeLogits) {
  Matrix in(2, 3);
  in(0, 0) = 1e4f;
  in(0, 1) = -1e4f;
  in(0, 2) = 0.0f;
  in(1, 0) = -1e4f;
  in(1, 1) = -1e4f;
  in(1, 2) = -1e4f;
  Matrix out;
  SoftmaxRows(in, &out);
  ASSERT_TRUE(AllFinite(out));
  EXPECT_NEAR(out(0, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(out(1, 0), 1.0f / 3.0f, 1e-5f);
}

TEST(OpsStabilityTest, CrossEntropyExtremeLogitsFinite) {
  Matrix logits(1, 4);
  logits(0, 0) = 500.0f;
  logits(0, 1) = -500.0f;
  std::vector<int32_t> targets = {1};  // The very unlikely class.
  Matrix d;
  const double loss = SoftmaxCrossEntropy(logits, targets, -1, &d);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 100.0);
  ASSERT_TRUE(AllFinite(d));
}

TEST(AdamStabilityTest, SurvivesZeroAndHugeGradients) {
  Parameter p("p", 2, 2);
  Adam adam({&p}, 1e-3f);
  // Step with zero gradients: parameters unchanged, no NaN from 0/sqrt(0).
  adam.Step();
  EXPECT_TRUE(AllFinite(p.value));
  EXPECT_EQ(p.value.SquaredNorm(), 0.0);
  // Huge gradient: update magnitude stays ~lr thanks to normalization.
  p.grad.Fill(1e20f);
  adam.Step();
  ASSERT_TRUE(AllFinite(p.value));
  for (size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_LT(std::fabs(p.value.data()[i]), 1e-2f);
  }
}

TEST(GruStabilityTest, RepeatedTrainingStepsStayFinite) {
  // A compact end-to-end soak: 60 optimization steps through GRU + softmax
  // on random data must never produce a non-finite value.
  Rng rng(3);
  Gru gru("gru", 5, 10, 1, rng);
  Parameter proj("proj", 10, 7);
  InitXavier(&proj.value, rng);
  ParamList params = gru.Params();
  params.push_back(&proj);
  Adam adam(params, 5e-3f);

  for (int step = 0; step < 60; ++step) {
    std::vector<Matrix> xs(12);
    for (Matrix& x : xs) {
      x.Resize(4, 5);
      for (size_t i = 0; i < x.size(); ++i) {
        x.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
      }
    }
    Gru::ForwardResult result;
    gru.Forward(xs, nullptr, {}, &result);

    std::vector<Matrix> d_hs(xs.size());
    double loss = 0.0;
    for (size_t t = 0; t < xs.size(); ++t) {
      Matrix logits(4, 7);
      Gemm(result.caches.back().h[t], proj.value, &logits);
      std::vector<int32_t> targets = {
          static_cast<int32_t>(rng.UniformInt(7)),
          static_cast<int32_t>(rng.UniformInt(7)),
          static_cast<int32_t>(rng.UniformInt(7)),
          static_cast<int32_t>(rng.UniformInt(7))};
      Matrix d_logits;
      loss += SoftmaxCrossEntropy(logits, targets, -1, &d_logits);
      GemmTransA(result.caches.back().h[t], d_logits, &proj.grad, 1.0f,
                 1.0f);
      d_hs[t].Resize(4, 10);
      GemmTransB(d_logits, proj.value, &d_hs[t]);
    }
    ASSERT_TRUE(std::isfinite(loss));

    std::vector<Matrix> d_xs;
    gru.Backward(xs, nullptr, {}, result, &d_hs, nullptr, &d_xs, nullptr);
    ClipGradNorm(params, 5.0);
    adam.Step();
    adam.ZeroGrad();
    for (Parameter* p : params) ASSERT_TRUE(AllFinite(p->value));
  }
}

}  // namespace
}  // namespace t2vec::nn
