#ifndef T2VEC_TESTS_GRADCHECK_H_
#define T2VEC_TESTS_GRADCHECK_H_

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/matrix.h"
#include "nn/parameter.h"

/// \file
/// Finite-difference gradient checking shared by the nn/core tests.
///
/// `loss_fn` must recompute the full forward pass and return the scalar loss;
/// `analytic_grad` is the gradient the backward pass produced for `target`
/// (same shape). Every weight is perturbed by ±eps (central differences) and
/// compared against the analytic value with a relative-error criterion.

namespace t2vec::nn::testing {

inline void ExpectGradientsMatch(Matrix* target, const Matrix& analytic_grad,
                                 const std::function<double()>& loss_fn,
                                 float eps = 1e-2f, double tol = 2e-2,
                                 size_t max_checks = 64, uint64_t seed = 1234) {
  ASSERT_TRUE(SameShape(*target, analytic_grad));
  const size_t n = target->size();
  // Deterministically subsample indices for large tensors.
  uint64_t state = seed;
  const size_t checks = std::min(n, max_checks);
  size_t checked = 0;
  for (size_t pick = 0; pick < checks; ++pick) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const size_t i = (n <= max_checks) ? pick : (state >> 16) % n;
    const float original = target->data()[i];

    // Perturbations write parameter storage directly, so invalidate the
    // fused weight-pack caches the same way an optimizer step would.
    target->data()[i] = original + eps;
    BumpParamVersion();
    const double loss_plus = loss_fn();
    target->data()[i] = original - eps;
    BumpParamVersion();
    const double loss_minus = loss_fn();
    target->data()[i] = original;
    BumpParamVersion();

    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    const double analytic = analytic_grad.data()[i];
    // The absolute floor (1e-3) makes near-zero gradients compare
    // absolutely: fp32 forward passes limit central differences to roughly
    // that resolution on deep networks.
    const double denom =
        std::max({std::fabs(numeric), std::fabs(analytic), 1e-3});
    const double rel_err = std::fabs(numeric - analytic) / denom;
    EXPECT_LT(rel_err, tol) << "index " << i << ": numeric=" << numeric
                            << " analytic=" << analytic;
    ++checked;
  }
  ASSERT_GT(checked, 0u);
}

}  // namespace t2vec::nn::testing

#endif  // T2VEC_TESTS_GRADCHECK_H_
