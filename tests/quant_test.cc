// int8 quantization contract tests: the per-row symmetric error bound,
// exact replication of QuantizedGemmTransB's fixed dequantize chain, the
// quantized-vs-fp32 accuracy envelope on a GRU stack, and — the serving
// guarantee — bit-identical quantized encodings across thread counts and
// SIMD dispatch tiers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/model.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "nn/gru.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "nn/quant.h"
#include "traj/tokenizer.h"

namespace t2vec::nn {
namespace {

class ScopedTier {
 public:
  explicit ScopedTier(SimdTier tier) : prev_(ActiveSimdTier()) {
    SetSimdTier(tier);
  }
  ~ScopedTier() { SetSimdTier(prev_); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  SimdTier prev_;
};

std::vector<SimdTier> TestableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdTierSupported(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, float scale = 1.0f) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return m;
}

// --------------------------------------------------------------------------
// Per-row symmetric quantization: scale = max|row| / 127, so the worst-case
// dequantization error of any element is scale / 2 (round-to-nearest).
// --------------------------------------------------------------------------

TEST(QuantTest, QuantizeTransposedErrorBound) {
  Rng rng(31);
  const Matrix w = RandomMatrix(23, 9, rng, 3.0f);  // k x out
  const QuantizedMatrix q = QuantizeTransposed(w);
  ASSERT_EQ(q.rows, w.cols());
  ASSERT_EQ(q.cols, w.rows());
  for (size_t j = 0; j < q.rows; ++j) {
    const float scale = q.scales[j];
    ASSERT_GT(scale, 0.0f);
    float max_abs = 0.0f;
    for (size_t p = 0; p < q.cols; ++p) {
      const float deq = scale * static_cast<float>(q.Row(j)[p]);
      const float orig = w.At(p, j);
      EXPECT_LE(std::fabs(deq - orig), scale * 0.5f + 1e-6f)
          << "channel " << j << " element " << p;
      max_abs = std::max(max_abs, std::fabs(orig));
    }
    EXPECT_NEAR(scale, max_abs / 127.0f, 1e-7f);
  }
}

TEST(QuantTest, QuantizeRowsDynamicZeroRowAndRounding) {
  Matrix x(2, 4);
  // Row 0 is all zeros; row 1 has a known max of 127 so scale is exactly 1
  // and quantization is plain round-to-nearest.
  x.At(1, 0) = 127.0f;
  x.At(1, 1) = -127.0f;
  x.At(1, 2) = 2.4f;
  x.At(1, 3) = -2.6f;
  std::vector<int8_t> q;
  std::vector<float> scales;
  QuantizeRowsDynamic(x, &q, &scales);
  ASSERT_EQ(q.size(), 8u);
  ASSERT_EQ(scales.size(), 2u);
  EXPECT_EQ(scales[0], 0.0f);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(q[i], 0);
  EXPECT_EQ(scales[1], 1.0f);
  EXPECT_EQ(q[4], 127);
  EXPECT_EQ(q[5], -127);
  EXPECT_EQ(q[6], 2);
  EXPECT_EQ(q[7], -3);
}

// Replicates QuantizedGemmTransB's documented per-element chain exactly:
// the int32 dot is exact, and the fp32 dequantize order is fixed in source,
// so the test can predict every output bit.
TEST(QuantTest, QuantizedGemmTransBExactChain) {
  Rng rng(32);
  const size_t m = 5, k = 19, n = 7;
  const Matrix x = RandomMatrix(m, k, rng, 2.0f);
  const Matrix w = RandomMatrix(k, n, rng, 1.5f);
  const QuantizedMatrix qw = QuantizeTransposed(w);
  std::vector<int8_t> qx;
  std::vector<float> sx;
  QuantizeRowsDynamic(x, &qx, &sx);

  const Matrix prev = RandomMatrix(m, n, rng);
  const Matrix bias = RandomMatrix(1, n, rng);

  for (bool accumulate : {false, true}) {
    for (bool with_bias : {false, true}) {
      Matrix out = prev;
      QuantizedGemmTransB(qx.data(), sx.data(), m, qw, out, accumulate,
                          with_bias ? bias.Row(0) : nullptr);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          int32_t dot = 0;
          for (size_t p = 0; p < k; ++p) {
            dot += static_cast<int32_t>(qx[i * k + p]) *
                   static_cast<int32_t>(qw.Row(j)[p]);
          }
          const float scale = sx[i] * qw.scales[j];
          const float dotf = static_cast<float>(dot);
          float expect = accumulate ? std::fma(scale, dotf, prev.At(i, j))
                                    : scale * dotf;
          if (with_bias) expect += bias.At(0, j);
          const float got = out.At(i, j);
          EXPECT_EQ(std::memcmp(&got, &expect, sizeof(float)), 0)
              << "(" << i << "," << j << ") accumulate=" << accumulate
              << " bias=" << with_bias;
        }
      }
    }
  }
}

// Analytic accuracy bound: |x.w - x̂.ŵ| per element is at most
// sum_p (|x_p| sw/2 + |w_pj| sx/2 + sx sw / 4) plus fp32 accumulation noise.
TEST(QuantTest, QuantizedGemmTransBWithinAnalyticBound) {
  Rng rng(33);
  const size_t m = 8, k = 64, n = 12;
  const Matrix x = RandomMatrix(m, k, rng, 4.0f);
  const Matrix w = RandomMatrix(k, n, rng, 0.8f);
  const QuantizedMatrix qw = QuantizeTransposed(w);
  std::vector<int8_t> qx;
  std::vector<float> sx;
  QuantizeRowsDynamic(x, &qx, &sx);
  Matrix out(m, n);
  QuantizedGemmTransB(qx.data(), sx.data(), m, qw, out, /*accumulate=*/false,
                      /*bias=*/nullptr);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double ref = 0.0, bound = 1e-4;
      for (size_t p = 0; p < k; ++p) {
        ref += static_cast<double>(x.At(i, p)) * w.At(p, j);
        bound += std::fabs(x.At(i, p)) * qw.scales[j] * 0.5 +
                 std::fabs(w.At(p, j)) * sx[i] * 0.5 +
                 sx[i] * qw.scales[j] * 0.25;
      }
      EXPECT_LE(std::fabs(out.At(i, j) - ref), bound)
          << "(" << i << "," << j << ")";
    }
  }
}

// --------------------------------------------------------------------------
// Quantized GRU / encoder: close to fp32, and bit-stable where it must be.
// --------------------------------------------------------------------------

TEST(QuantTest, QuantizedGruTracksFp32) {
  Rng rng(34);
  const size_t in_dim = 14, hidden = 18, batch = 5, steps = 6;
  const Gru gru("g", in_dim, hidden, /*layers=*/2, rng);
  const QuantizedGru qgru(gru);
  ASSERT_EQ(qgru.layers(), 2u);
  ASSERT_EQ(qgru.hidden(), hidden);
  ASSERT_EQ(qgru.in_dim(), in_dim);

  std::vector<Matrix> xs;
  for (size_t t = 0; t < steps; ++t) {
    xs.push_back(RandomMatrix(batch, in_dim, rng));
  }
  std::vector<std::vector<float>> masks(steps,
                                        std::vector<float>(batch, 1.0f));
  masks[steps - 1][2] = 0.0f;  // one sequence ends a step early

  Gru::ForwardResult fp32;
  gru.Forward(xs, nullptr, masks, &fp32);
  Matrix qh;
  qgru.Forward(xs, masks, &qh);

  const Matrix& ref = fp32.final_state.h.back();
  ASSERT_EQ(qh.rows(), ref.rows());
  ASSERT_EQ(qh.cols(), ref.cols());
  double max_err = 0.0;
  for (size_t i = 0; i < qh.size(); ++i) {
    max_err = std::max(
        max_err,
        static_cast<double>(std::fabs(qh.data()[i] - ref.data()[i])));
  }
  // Hidden states live in (-1, 1); int8 symmetric quantization of weights
  // and activations keeps the drift well inside this envelope.
  EXPECT_LT(max_err, 0.1) << "quantized GRU drifted from fp32";
  EXPECT_GT(max_err, 0.0) << "suspiciously exact: quantization not applied?";
}

TEST(QuantTest, QuantizedEncoderBitIdenticalAcrossThreadsAndTiers) {
  Rng rng(35);
  core::T2VecConfig config;
  config.embed_dim = 10;
  config.hidden = 16;
  config.layers = 2;
  const core::EncoderDecoder model(config, /*vocab_size=*/32, rng);
  const core::QuantizedEncoder quantized(model);
  EXPECT_EQ(quantized.hidden(), model.hidden());

  std::vector<traj::TokenSeq> seqs;
  Rng token_rng(36);
  for (size_t i = 0; i < 7; ++i) {
    traj::TokenSeq seq(2 + i % 5);
    for (auto& tok : seq) {
      tok = static_cast<geo::Token>(4 + token_rng.UniformInt(28));
    }
    seqs.push_back(seq);
  }
  seqs.push_back(traj::TokenSeq{});  // empty sequence keeps its zero row

  Matrix ref;
  {
    ScopedTier tier(SimdTier::kScalar);
    ScopedNumThreads threads(1);
    ref = quantized.EncodeBatch(seqs);
  }
  for (size_t i = 0; i < ref.cols(); ++i) {
    EXPECT_EQ(ref.At(ref.rows() - 1, i), 0.0f) << "empty-seq row not zero";
  }

  for (SimdTier tier : TestableTiers()) {
    for (int threads : {1, 2, 8}) {
      ScopedTier scoped_tier(tier);
      ScopedNumThreads scoped_threads(threads);
      const Matrix got = quantized.EncodeBatch(seqs);
      ASSERT_EQ(got.rows(), ref.rows());
      ASSERT_EQ(got.cols(), ref.cols());
      EXPECT_EQ(
          std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << "tier=" << SimdTierName(tier) << " threads=" << threads;
    }
  }
}

TEST(QuantTest, QuantizedEncoderTracksFp32Encoder) {
  Rng rng(37);
  core::T2VecConfig config;
  config.embed_dim = 10;
  config.hidden = 16;
  config.layers = 1;
  const core::EncoderDecoder model(config, /*vocab_size=*/32, rng);
  const core::QuantizedEncoder quantized(model);

  std::vector<traj::TokenSeq> seqs;
  Rng token_rng(38);
  for (size_t i = 0; i < 6; ++i) {
    traj::TokenSeq seq(4 + i);
    for (auto& tok : seq) {
      tok = static_cast<geo::Token>(4 + token_rng.UniformInt(28));
    }
    seqs.push_back(seq);
  }
  const Matrix fp32 = model.EncodeBatch(seqs);
  const Matrix int8 = quantized.EncodeBatch(seqs);
  ASSERT_EQ(fp32.rows(), int8.rows());
  ASSERT_EQ(fp32.cols(), int8.cols());
  double max_err = 0.0;
  for (size_t i = 0; i < fp32.size(); ++i) {
    max_err = std::max(
        max_err,
        static_cast<double>(std::fabs(fp32.data()[i] - int8.data()[i])));
  }
  EXPECT_LT(max_err, 0.1) << "quantized encoder drifted from fp32";
}

// End to end through the public API: T2Vec::EncodeQuantized (which adds the
// slice-parallel driver and the lazy weight cache) must be deterministic
// across thread counts and dispatch tiers, and consistent with the
// tokenized entry point the serving layer uses.
TEST(QuantTest, T2VecEncodeQuantizedDeterministic) {
  const eval::ExperimentData data =
      eval::MakeData(eval::DatasetKind::kPortoLike, 40, 0);
  core::T2VecConfig config;
  config.hidden = 16;
  config.embed_dim = 10;
  config.layers = 1;
  config.max_iterations = 2;
  config.validate_every = 100;
  config.pretrain_epochs = 1;
  config.r1_grid = {0.0};
  config.r2_grid = {0.0};
  const core::T2Vec model =
      core::T2Vec::Train(data.train.trajectories(), config);
  model.PrepareQuantized();

  const std::vector<traj::Trajectory>& trips = data.train.trajectories();
  Matrix ref;
  {
    ScopedTier tier(SimdTier::kScalar);
    ScopedNumThreads threads(1);
    ref = model.EncodeQuantized(trips);
  }
  ASSERT_EQ(ref.rows(), trips.size());

  for (SimdTier tier : TestableTiers()) {
    for (int threads : {1, 2, 8}) {
      ScopedTier scoped_tier(tier);
      ScopedNumThreads scoped_threads(threads);
      const Matrix got = model.EncodeQuantized(trips);
      ASSERT_EQ(got.rows(), ref.rows());
      EXPECT_EQ(
          std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)), 0)
          << "tier=" << SimdTierName(tier) << " threads=" << threads;
    }
  }

  // The tokenized entry point (serving path) agrees row-for-row.
  std::vector<traj::TokenSeq> seqs;
  for (const auto& trip : trips) seqs.push_back(model.EncoderTokens(trip));
  const Matrix tokenized = model.EncodeQuantizedTokenized(seqs);
  EXPECT_EQ(
      std::memcmp(tokenized.data(), ref.data(), ref.size() * sizeof(float)),
      0);
}

}  // namespace
}  // namespace t2vec::nn
