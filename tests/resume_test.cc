// Kill-and-resume acceptance (DESIGN.md §7): training interrupted at several
// seeded iteration points and resumed from the latest snapshot must produce
// final parameters memcmp-identical to the uninterrupted run, at 1 and 8
// threads. Also covers the fail-soft paths: a fault-injected snapshot write
// never kills training, and corrupt / mismatched snapshots fail Resume with
// a clean Status.
//
// `max_iterations` is part of the config fingerprint, so a kill is simulated
// by copying the snapshots a run had written up to iteration K into a fresh
// directory: training is deterministic, so the snapshot the full run wrote
// at iteration K is byte-identical to the one a run killed right after
// iteration K would have left behind.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "common/serialize.h"
#include "core/t2vec.h"
#include "eval/experiments.h"

namespace t2vec {
namespace {

namespace fs = std::filesystem;

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = fs::path(::testing::TempDir()) /
           ("resume_test_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

core::T2VecConfig SmallConfig(int num_threads) {
  core::T2VecConfig config;
  config.hidden = 16;
  config.embed_dim = 12;
  config.layers = 1;
  config.max_iterations = 24;
  config.validate_every = 8;
  config.patience = 100;  // Never early-stop inside this short run.
  config.pretrain_cells = false;
  config.r1_grid = {0.0};
  config.r2_grid = {0.0};
  config.num_threads = num_threads;
  return config;
}

std::vector<traj::Trajectory> SmallData() {
  static const eval::ExperimentData data =
      eval::MakeData(eval::DatasetKind::kPortoLike, 60, 0);
  return data.train.trajectories();
}

// All trainable parameters flattened to raw bytes, for memcmp-style equality.
std::string FlattenParams(core::T2Vec* model) {
  std::string bytes;
  for (const nn::Parameter* p : model->model().Params()) {
    bytes.append(reinterpret_cast<const char*>(p->value.data()),
                 p->value.size() * sizeof(float));
  }
  return bytes;
}

std::string SnapshotName(size_t iter) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot_%08llu.t2vsnap",
                static_cast<unsigned long long>(iter));
  return buf;
}

TEST_F(ResumeTest, ResumeIsBitIdenticalAtThreeKillPointsAndTwoThreadCounts) {
  std::string baseline_bytes;  // 1-thread reference; 8-thread must match too.
  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string ckpt_dir = Path("ckpt_t" + std::to_string(threads));

    // Uninterrupted run; its periodic snapshots double as the kill states.
    core::T2VecConfig config = SmallConfig(threads);
    config.checkpoint_dir = ckpt_dir;
    config.checkpoint_every = 8;
    auto full = core::T2Vec::TrainChecked(SmallData(), config);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    const std::string final_bytes = FlattenParams(&full.value());
    ASSERT_FALSE(final_bytes.empty());
    if (baseline_bytes.empty()) {
      baseline_bytes = final_bytes;
    } else {
      // Thread-count invariance of the whole pipeline.
      EXPECT_EQ(final_bytes, baseline_bytes);
    }

    for (const size_t kill_at : {size_t{8}, size_t{16}, size_t{24}}) {
      SCOPED_TRACE("kill_at=" + std::to_string(kill_at));
      // A run killed right after iteration `kill_at` leaves exactly the
      // snapshots up to that point; Resume must pick the latest of them.
      const std::string kill_dir =
          Path("kill_t" + std::to_string(threads) + "_" +
               std::to_string(kill_at));
      fs::create_directories(kill_dir);
      for (size_t iter = 8; iter <= kill_at; iter += 8) {
        fs::copy_file(fs::path(ckpt_dir) / SnapshotName(iter),
                      fs::path(kill_dir) / SnapshotName(iter));
      }

      core::T2VecConfig resume_config = SmallConfig(threads);
      resume_config.resume_from = kill_dir;
      auto resumed = core::T2Vec::TrainChecked(SmallData(), resume_config);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      const std::string resumed_bytes = FlattenParams(&resumed.value());
      ASSERT_EQ(resumed_bytes.size(), final_bytes.size());
      EXPECT_EQ(std::memcmp(resumed_bytes.data(), final_bytes.data(),
                            final_bytes.size()),
                0)
          << "resumed run diverged from the uninterrupted run";
    }
  }
}

TEST_F(ResumeTest, SnapshotWriteFaultNeverKillsOrPerturbsTraining) {
  // Reference run without checkpointing.
  auto plain = core::T2Vec::TrainChecked(SmallData(), SmallConfig(1));
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  const std::string plain_bytes = FlattenParams(&plain.value());

  // Same run with checkpointing, but the first snapshot write fails (ENOSPC).
  fault::Arm("trainer.snapshot.write", 1, ENOSPC);
  core::T2VecConfig config = SmallConfig(1);
  config.checkpoint_dir = Path("ckpt");
  config.checkpoint_every = 8;
  auto faulted = core::T2Vec::TrainChecked(SmallData(), config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(FlattenParams(&faulted.value()), plain_bytes);

  // The failed snapshot left no file (atomic publication), later ones landed,
  // and nothing half-written lingers.
  EXPECT_FALSE(fs::exists(fs::path(config.checkpoint_dir) / SnapshotName(8)));
  EXPECT_TRUE(fs::exists(fs::path(config.checkpoint_dir) / SnapshotName(16)));
  EXPECT_TRUE(fs::exists(fs::path(config.checkpoint_dir) / SnapshotName(24)));
  for (const auto& entry : fs::directory_iterator(config.checkpoint_dir)) {
    EXPECT_EQ(entry.path().extension(), ".t2vsnap") << entry.path();
  }
}

TEST_F(ResumeTest, CorruptSnapshotFailsResumeWithCleanStatus) {
  core::T2VecConfig config = SmallConfig(1);
  config.checkpoint_dir = Path("ckpt");
  config.checkpoint_every = 8;
  ASSERT_TRUE(core::T2Vec::TrainChecked(SmallData(), config).ok());
  const std::string snap =
      (fs::path(config.checkpoint_dir) / SnapshotName(24)).string();

  std::string bytes;
  ASSERT_TRUE(ReadFileToString(snap, &bytes).ok());
  std::string mutated = bytes;
  mutated[mutated.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteFileAtomic(snap, mutated).ok());

  core::T2VecConfig resume_config = SmallConfig(1);
  resume_config.resume_from = snap;
  auto resumed = core::T2Vec::TrainChecked(SmallData(), resume_config);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("checksum mismatch"),
            std::string::npos)
      << resumed.status().ToString();

  // A snapshot whose CRC trailer was stripped (truncation to a byte-valid
  // legacy stream) is also rejected: snapshots always require the trailer.
  std::string stripped = bytes;
  stripped.resize(stripped.size() - kCrcTrailerBytes);
  ASSERT_TRUE(WriteFileAtomic(snap, stripped).ok());
  auto stripped_result = core::T2Vec::TrainChecked(SmallData(), resume_config);
  ASSERT_FALSE(stripped_result.ok());
  EXPECT_NE(stripped_result.status().message().find("checksum trailer"),
            std::string::npos)
      << stripped_result.status().ToString();
}

TEST_F(ResumeTest, ConfigFingerprintMismatchIsRejected) {
  core::T2VecConfig config = SmallConfig(1);
  config.checkpoint_dir = Path("ckpt");
  config.checkpoint_every = 8;
  ASSERT_TRUE(core::T2Vec::TrainChecked(SmallData(), config).ok());

  core::T2VecConfig other = SmallConfig(1);
  other.learning_rate *= 2.0f;  // Result-affecting: changes the fingerprint.
  other.resume_from = config.checkpoint_dir;
  auto resumed = core::T2Vec::TrainChecked(SmallData(), other);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition)
      << resumed.status().ToString();
  EXPECT_NE(resumed.status().message().find("fingerprint"), std::string::npos)
      << resumed.status().ToString();
}

TEST_F(ResumeTest, LatestSnapshotPicksHighestIterationAndFailsOnEmptyDir) {
  const std::string dir = Path("snaps");
  fs::create_directories(dir);
  EXPECT_EQ(core::Trainer::LatestSnapshot(dir).status().code(),
            StatusCode::kNotFound);

  for (const size_t iter : {size_t{8}, size_t{24}, size_t{16}}) {
    ASSERT_TRUE(
        WriteFileAtomic((fs::path(dir) / SnapshotName(iter)).string(), "x")
            .ok());
  }
  // Non-snapshot files are ignored.
  ASSERT_TRUE(WriteFileAtomic((fs::path(dir) / "notes.txt").string(), "x").ok());
  auto latest = core::Trainer::LatestSnapshot(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(fs::path(latest.value()).filename().string(), SnapshotName(24));
}

}  // namespace
}  // namespace t2vec
