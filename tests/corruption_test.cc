// Corruption matrix (DESIGN.md §7): every truncation and bit-flip of a
// valid durable artifact must fail its load with a clean Status — never a
// crash, an abort, or a silently wrong in-memory object.
//
// Checkpoints and embedding-store snapshots are small enough to mutate
// exhaustively: truncation at every byte boundary (which includes every
// field boundary) and a bit flip in every byte. The larger model file is
// covered at every header/trailer byte plus a stride through the payload.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/ann_index.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "nn/checkpoint.h"
#include "serve/embedding_store.h"

namespace t2vec {
namespace {

std::string TestDir() {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "corruption_test")
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::string out;
  EXPECT_TRUE(ReadFileToString(path, &out).ok());
  return out;
}

// Applies `load` to every truncation and every per-byte bit flip of `bytes`,
// asserting each mutation is rejected. Returns the number of mutations.
size_t ExhaustiveMatrix(const std::string& bytes, const std::string& path,
                        const std::function<Status(const std::string&)>& load) {
  size_t mutations = 0;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_TRUE(WriteFileAtomic(path, bytes.substr(0, cut)).ok())
        << "setup failed";
    const Status status = load(path);
    EXPECT_FALSE(status.ok()) << "truncation at byte " << cut << " accepted";
    ++mutations;
  }
  const size_t payload_end = bytes.size() - kCrcTrailerBytes;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    EXPECT_TRUE(WriteFileAtomic(path, mutated).ok()) << "setup failed";
    const Status status = load(path);
    EXPECT_FALSE(status.ok()) << "bit flip at byte " << i << " accepted";
    if (i < payload_end) {
      // Header and payload bytes are covered by the CRC, so the checksum —
      // not a lucky parse failure — must be what catches the flip.
      EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
          << "payload flip at byte " << i << ": " << status.ToString();
    }
    ++mutations;
  }
  return mutations;
}

TEST(CorruptionTest, CheckpointSurvivesFullMatrix) {
  const std::string path = TestDir() + "/matrix.ckpt";
  nn::Parameter a("encoder.weight", 3, 4);
  nn::Parameter b("decoder.bias", 1, 5);
  for (size_t i = 0; i < a.value.size(); ++i) {
    a.value.data()[i] = static_cast<float>(i) * 0.25f;
  }
  for (size_t i = 0; i < b.value.size(); ++i) {
    b.value.data()[i] = -static_cast<float>(i);
  }
  const nn::ParamList params = {&a, &b};
  ASSERT_TRUE(nn::SaveParams(params, path).ok());
  const std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), kCrcTrailerBytes);

  // The pristine file loads.
  nn::Parameter a2("encoder.weight", 3, 4);
  nn::Parameter b2("decoder.bias", 1, 5);
  const nn::ParamList into = {&a2, &b2};
  ASSERT_TRUE(nn::LoadParams(into, path).ok());

  const size_t n = ExhaustiveMatrix(
      bytes, path,
      [&into](const std::string& p) { return nn::LoadParams(into, p); });
  EXPECT_EQ(n, 2 * bytes.size());
}

TEST(CorruptionTest, EmbeddingStoreSurvivesFullMatrix) {
  const std::string path = TestDir() + "/matrix.store";
  serve::EmbeddingStore store(4);
  const std::vector<float> v0 = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> v1 = {-1.0f, 0.5f, 0.0f, 9.0f};
  ASSERT_TRUE(store.Add(100, v0).ok());
  ASSERT_TRUE(store.Add(200, v1).ok());
  ASSERT_TRUE(store.Save(path).ok());
  const std::string bytes = Slurp(path);

  ASSERT_TRUE(serve::EmbeddingStore::Load(path).ok());
  ASSERT_TRUE(serve::EmbeddingStore::LoadMmap(path).ok());

  // Both loaders face the same matrix: the mmap path verifies the CRC once
  // at open, so it must reject exactly what the full-read path rejects.
  const size_t n =
      ExhaustiveMatrix(bytes, path, [](const std::string& p) {
        return serve::EmbeddingStore::Load(p).status();
      });
  EXPECT_EQ(n, 2 * bytes.size());
  const size_t m =
      ExhaustiveMatrix(bytes, path, [](const std::string& p) {
        return serve::EmbeddingStore::LoadMmap(p).status();
      });
  EXPECT_EQ(m, 2 * bytes.size());
}

TEST(CorruptionTest, IvfIndexSnapshotSurvivesFullMatrix) {
  // A trained IVF snapshot carries centroids and inverted lists past the
  // row block — a flip anywhere in that aux structure must be caught by the
  // CRC, through the full-read loader and the mmap loader alike.
  const std::string path = TestDir() + "/matrix.idx";
  core::IndexConfig config;
  config.kind = core::IndexKind::kIvf;
  config.ivf_nlist = 3;
  config.ivf_nprobe = 2;
  config.ivf_train_iters = 2;
  config.ivf_seed = 9;
  config.ivf_train_per_list = 4;

  auto created = core::CreateIndex(config, 4);
  ASSERT_TRUE(created.ok());
  Rng rng(41);
  for (size_t i = 0; i < 20; ++i) {
    std::vector<float> row(4);
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    created.value()->Add(row);
  }
  ASSERT_TRUE(created.value()->Save(path).ok());
  const std::string bytes = Slurp(path);
  ASSERT_TRUE(core::LoadIndex(config, path).ok());
  ASSERT_TRUE(core::OpenIndexMmap(config, path).ok());

  const size_t n = ExhaustiveMatrix(bytes, path, [&](const std::string& p) {
    return core::LoadIndex(config, p).status();
  });
  EXPECT_EQ(n, 2 * bytes.size());
  const size_t m = ExhaustiveMatrix(bytes, path, [&](const std::string& p) {
    return core::OpenIndexMmap(config, p).status();
  });
  EXPECT_EQ(m, 2 * bytes.size());
}

TEST(CorruptionTest, ModelFileRejectsSampledCorruptions) {
  // The eval cache stores model files in exactly this format, so this also
  // covers the cache-entry case (eval/cache.cc additionally falls back to
  // retraining on a rejected entry).
  const std::string path = TestDir() + "/matrix.t2vec";
  const eval::ExperimentData data =
      eval::MakeData(eval::DatasetKind::kPortoLike, 60, 0);
  core::T2VecConfig config;
  config.hidden = 16;
  config.embed_dim = 12;
  config.layers = 1;
  config.max_iterations = 2;
  config.validate_every = 100;
  config.pretrain_cells = false;
  config.r1_grid = {0.0};
  config.r2_grid = {0.0};
  const core::T2Vec model = core::T2Vec::Train(data.train.trajectories(),
                                               config);
  ASSERT_TRUE(model.Save(path).ok());
  const std::string bytes = Slurp(path);
  ASSERT_TRUE(core::T2Vec::Load(path).ok());

  std::vector<size_t> offsets;
  // Every header byte, every trailer byte, and a stride through the payload.
  for (size_t i = 0; i < std::min<size_t>(64, bytes.size()); ++i) {
    offsets.push_back(i);
  }
  for (size_t i = bytes.size() - kCrcTrailerBytes; i < bytes.size(); ++i) {
    offsets.push_back(i);
  }
  for (size_t i = 64; i + kCrcTrailerBytes < bytes.size(); i += 997) {
    offsets.push_back(i);
  }

  for (const size_t cut : offsets) {
    ASSERT_TRUE(WriteFileAtomic(path, bytes.substr(0, cut)).ok());
    EXPECT_FALSE(core::T2Vec::Load(path).ok())
        << "truncation at byte " << cut << " accepted";
  }
  for (const size_t i : offsets) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x04);
    ASSERT_TRUE(WriteFileAtomic(path, mutated).ok());
    const Status status = core::T2Vec::Load(path).status();
    EXPECT_FALSE(status.ok()) << "bit flip at byte " << i << " accepted";
    if (i + kCrcTrailerBytes < bytes.size()) {
      EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
          << "payload flip at byte " << i << ": " << status.ToString();
    }
  }
}

TEST(CorruptionTest, EmptyAndGarbageFilesAreRejected) {
  const std::string path = TestDir() + "/noise.bin";
  nn::Parameter p("w", 2, 2);
  const nn::ParamList params = {&p};
  for (const std::string& contents :
       {std::string(), std::string("not a checkpoint"),
        std::string(1024, '\xFF')}) {
    ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
    EXPECT_FALSE(nn::LoadParams(params, path).ok());
    EXPECT_FALSE(serve::EmbeddingStore::Load(path).ok());
    EXPECT_FALSE(serve::EmbeddingStore::LoadMmap(path).ok());
    EXPECT_FALSE(core::T2Vec::Load(path).ok());
  }
}

}  // namespace
}  // namespace t2vec
