#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/classic.h"
#include "dist/cms.h"
#include "dist/edwp.h"
#include "dist/knn.h"
#include "traj/transforms.h"

namespace t2vec::dist {
namespace {

using geo::Point;

std::vector<Point> Line(int n, double step = 100.0, double y = 0.0) {
  std::vector<Point> out;
  for (int i = 0; i < n; ++i) out.push_back({i * step, y});
  return out;
}

traj::Trajectory AsTraj(std::vector<Point> points, int64_t id = 0) {
  traj::Trajectory t;
  t.id = id;
  t.points = std::move(points);
  return t;
}

// --- Identity / symmetry properties over every measure -------------------

class MeasurePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Measure> MakeMeasure() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<DtwMeasure>();
      case 1:
        return std::make_unique<LcssMeasure>(100.0);
      case 2:
        return std::make_unique<EdrMeasure>(100.0);
      case 3:
        return std::make_unique<ErpMeasure>(Point{0, 0});
      case 4:
        return std::make_unique<FrechetMeasure>();
      case 5:
        return std::make_unique<HausdorffMeasure>();
      case 6:
        return std::make_unique<EdwpMeasure>();
    }
    return nullptr;
  }
};

TEST_P(MeasurePropertyTest, IdentityIsZero) {
  auto m = MakeMeasure();
  Rng rng(GetParam() + 1);
  traj::Trajectory t;
  for (int i = 0; i < 20; ++i) {
    t.points.push_back({rng.Uniform(0, 5000), rng.Uniform(0, 5000)});
  }
  EXPECT_NEAR(m->Distance(t, t), 0.0, 1e-9);
}

TEST_P(MeasurePropertyTest, Symmetric) {
  auto m = MakeMeasure();
  Rng rng(GetParam() + 100);
  traj::Trajectory a, b;
  for (int i = 0; i < 15; ++i) {
    a.points.push_back({rng.Uniform(0, 5000), rng.Uniform(0, 5000)});
    b.points.push_back({rng.Uniform(0, 5000), rng.Uniform(0, 5000)});
  }
  EXPECT_NEAR(m->Distance(a, b), m->Distance(b, a), 1e-6);
}

TEST_P(MeasurePropertyTest, NonNegative) {
  auto m = MakeMeasure();
  Rng rng(GetParam() + 200);
  traj::Trajectory a, b;
  for (int i = 0; i < 10; ++i) {
    a.points.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    b.points.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
  }
  EXPECT_GE(m->Distance(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasurePropertyTest,
                         ::testing::Range(0, 7));

// --- DTW ------------------------------------------------------------------

TEST(DtwTest, KnownSmallCase) {
  // a = single point at origin; b = two points at distance 3 and 4.
  const std::vector<Point> a = {{0, 0}};
  const std::vector<Point> b = {{3, 0}, {0, 4}};
  // Both of b's points align with a's single point: cost 3 + 4.
  EXPECT_DOUBLE_EQ(Dtw(a, b), 7.0);
}

TEST(DtwTest, HandlesTimeShift) {
  // The same path sampled with a stutter should be almost free under DTW.
  const std::vector<Point> a = {{0, 0}, {100, 0}, {200, 0}};
  const std::vector<Point> b = {{0, 0}, {0, 0}, {100, 0}, {200, 0}};
  EXPECT_DOUBLE_EQ(Dtw(a, b), 0.0);
}

// --- LCSS -------------------------------------------------------------------

TEST(LcssTest, ExactMatch) {
  const auto a = Line(10);
  EXPECT_EQ(Lcss(a, a, 50.0), 10);
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, 50.0), 0.0);
}

TEST(LcssTest, NoMatchWhenFar) {
  const auto a = Line(5);
  const auto b = Line(5, 100.0, 1e6);
  EXPECT_EQ(Lcss(a, b, 50.0), 0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 50.0), 1.0);
}

TEST(LcssTest, PartialMatch) {
  // b shares the first 3 of a's 6 points.
  const auto a = Line(6);
  std::vector<Point> b = {a[0], a[1], a[2], {1e6, 0}, {1e6, 100}, {1e6, 200}};
  EXPECT_EQ(Lcss(a, b, 10.0), 3);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 10.0), 0.5);
}

// --- EDR --------------------------------------------------------------------

TEST(EdrTest, PaperFigure1aExample) {
  // Fig. 1a: Ta has 3 points, Tb has 6 points along the same route; with
  // cell threshold matching only the shared endpoints, EDR = 5 even though
  // the trajectories share the underlying route. (Reconstruction of the
  // motivating example: endpoints match, interior points do not.)
  const std::vector<Point> ta = {{0, 0}, {500, 40}, {1000, 0}};
  const std::vector<Point> tb = {{0, 0},   {200, 90}, {400, 95},
                                 {600, 95}, {800, 90}, {1000, 0}};
  // eps = 50: matches (a1, b1) and (a3, b6) only.
  EXPECT_EQ(Edr(ta, tb, 50.0), 4);  // 6-2 alignment: 3 insertions + 1 subst.
  // The key qualitative point: the distance is large relative to |ta|
  // although both represent the same route.
  EXPECT_GE(Edr(ta, tb, 50.0), 3);
}

TEST(EdrTest, EmptyAndIdentity) {
  const auto a = Line(4);
  EXPECT_EQ(Edr(a, {}, 10.0), 4);
  EXPECT_EQ(Edr({}, a, 10.0), 4);
  EXPECT_EQ(Edr(a, a, 10.0), 0);
}

TEST(EdrTest, UnitCostPerUnmatchedPoint) {
  const auto a = Line(5);
  auto b = a;
  b.push_back({1e6, 0.0});  // One extra far point.
  EXPECT_EQ(Edr(a, b, 10.0), 1);
}

// --- ERP --------------------------------------------------------------------

TEST(ErpTest, GapPenalty) {
  // Deleting one point costs its distance to the gap element.
  const std::vector<Point> a = {{100, 0}};
  const std::vector<Point> b = {};
  EXPECT_DOUBLE_EQ(Erp(a, b, {0, 0}), 100.0);
}

TEST(ErpTest, TriangleInequalitySpotCheck) {
  // ERP is a metric; check the triangle inequality on random triples.
  Rng rng(9);
  const Point gap{0, 0};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point> a, b, c;
    for (int i = 0; i < 6; ++i) {
      a.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
      b.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
      c.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    }
    const double ab = Erp(a, b, gap);
    const double bc = Erp(b, c, gap);
    const double ac = Erp(a, c, gap);
    EXPECT_LE(ac, ab + bc + 1e-6);
  }
}

// --- Frechet / Hausdorff ------------------------------------------------------

TEST(FrechetTest, ParallelLines) {
  const auto a = Line(10, 100.0, 0.0);
  const auto b = Line(10, 100.0, 70.0);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b), 70.0);
}

TEST(HausdorffTest, ParallelLines) {
  const auto a = Line(10, 100.0, 0.0);
  const auto b = Line(10, 100.0, 70.0);
  EXPECT_DOUBLE_EQ(Hausdorff(a, b), 70.0);
}

TEST(HausdorffTest, SubsetDirectionality) {
  // b covers a's range plus an excursion; symmetric Hausdorff sees it.
  const auto a = Line(5);
  auto b = a;
  b.push_back({200.0, 500.0});
  EXPECT_DOUBLE_EQ(Hausdorff(a, b), 500.0);
}

// --- EDwP ---------------------------------------------------------------------

TEST(EdwpTest, InsertedCollinearPointsAreNearlyFree) {
  // The defining property: a trajectory densified with points on the same
  // line costs almost nothing, while EDR pays per extra point.
  const std::vector<Point> sparse = {{0, 0}, {1000, 0}};
  std::vector<Point> dense;
  for (int i = 0; i <= 10; ++i) dense.push_back({i * 100.0, 0.0});

  EXPECT_NEAR(Edwp(sparse, dense), 0.0, 1e-6);
  EXPECT_EQ(Edr(sparse, dense, 50.0), 9);  // EDR pays for all insertions.
}

TEST(EdwpTest, SeparatedLinesCost) {
  const auto a = Line(5);
  const auto b = Line(5, 100.0, 200.0);
  EXPECT_GT(Edwp(a, b), 0.0);
}

TEST(EdwpTest, FartherTrajectoriesCostMore) {
  const auto a = Line(8);
  const auto near = Line(8, 100.0, 50.0);
  const auto far = Line(8, 100.0, 400.0);
  EXPECT_LT(Edwp(a, near), Edwp(a, far));
}

TEST(EdwpTest, RobustToDownsamplingComparedToEdr) {
  // Downsampling a trajectory should move it less (relatively) under EDwP
  // than under EDR: rank a downsampled variant vs. a parallel offset copy.
  Rng rng(13);
  traj::Trajectory original = AsTraj(Line(40, 50.0));
  traj::Trajectory down = traj::Downsample(original, 0.5, rng);
  traj::Trajectory offset = AsTraj(Line(40, 50.0, 120.0));

  // EDwP must consider the downsampled variant closer than the offset copy.
  EXPECT_LT(Edwp(down.points, original.points),
            Edwp(offset.points, original.points));
}

TEST(EdwpTest, SinglePoints) {
  EXPECT_DOUBLE_EQ(Edwp({{0, 0}}, {{3, 4}}), 5.0);
}

// --- CMS ------------------------------------------------------------------------

TEST(CmsTest, JaccardValues) {
  EXPECT_DOUBLE_EQ(CellJaccardDistance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(CellJaccardDistance({1, 2}, {3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(CellJaccardDistance({1, 2, 3}, {2, 3, 4}), 0.5);
  // Duplicates collapse.
  EXPECT_DOUBLE_EQ(CellJaccardDistance({1, 1, 2}, {2, 2, 1}), 0.0);
}

TEST(CmsTest, IgnoresOrder) {
  geo::SpatialGrid grid({0, 0}, {1000, 100}, 100.0);
  std::vector<Point> pts;
  for (int c = 0; c < 10; ++c) {
    pts.push_back(grid.CenterOf(grid.CellAt(0, c)));
    pts.push_back(grid.CenterOf(grid.CellAt(0, c)));
  }
  geo::HotCellVocab vocab(grid, pts, 2);
  CmsMeasure cms(&vocab);

  traj::Trajectory forward = AsTraj(Line(10));
  traj::Trajectory backward = forward;
  std::reverse(backward.points.begin(), backward.points.end());
  // CMS cannot distinguish a route from its reverse — the weakness the
  // paper calls out.
  EXPECT_DOUBLE_EQ(cms.Distance(forward, backward), 0.0);
}

// --- k-NN ------------------------------------------------------------------------

TEST(KnnTest, FindsNearestByConstruction) {
  std::vector<traj::Trajectory> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(AsTraj(Line(5, 100.0, i * 100.0), i));
  }
  const traj::Trajectory query = AsTraj(Line(5, 100.0, 250.0));
  DtwMeasure dtw;
  const auto knn = KnnQuery(dtw, query, db, 3).ids;
  ASSERT_EQ(knn.size(), 3u);
  // Nearest rows are y = 200 and y = 300 (indices 2, 3), then 1 or 4.
  EXPECT_TRUE(knn[0] == 2 || knn[0] == 3);
  EXPECT_TRUE(knn[1] == 2 || knn[1] == 3);
  EXPECT_NE(knn[0], knn[1]);
}

TEST(KnnTest, RankOfSelfIsOne) {
  std::vector<traj::Trajectory> db;
  for (int i = 0; i < 8; ++i) db.push_back(AsTraj(Line(6, 100.0, i * 50.0)));
  DtwMeasure dtw;
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(RankOf(dtw, db[i], db, i), 1u);
  }
}

TEST(KnnTest, RankOrdering) {
  std::vector<traj::Trajectory> db;
  for (int i = 0; i < 8; ++i) db.push_back(AsTraj(Line(6, 100.0, i * 50.0)));
  const traj::Trajectory query = AsTraj(Line(6, 100.0, 10.0));
  DtwMeasure dtw;
  // db[0] (y=0) is nearest; rank grows with index.
  EXPECT_EQ(RankOf(dtw, query, db, 0), 1u);
  EXPECT_EQ(RankOf(dtw, query, db, 3), 4u);
  EXPECT_EQ(RankOf(dtw, query, db, 7), 8u);
}

// Regression: a measure yielding NaN used to hand std::partial_sort a
// comparator violating strict weak ordering (UB, garbage neighbor lists).
// NaN distances must now sort after every finite distance.
class NanOnEvenIdMeasure : public Measure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override {
    if (b.id % 2 == 0) return std::nan("");
    return std::abs(static_cast<double>(a.id - b.id));
  }
  std::string Name() const override { return "nan_on_even"; }
};

TEST(KnnTest, NanDistancesOrderLast) {
  std::vector<traj::Trajectory> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(AsTraj(Line(4), /*id=*/i));
  }
  const traj::Trajectory query = AsTraj(Line(4), /*id=*/0);
  NanOnEvenIdMeasure measure;

  // All ten requested: the five finite-distance trajectories (odd ids,
  // ascending |id|) must come first, the five NaN ones last.
  const std::vector<size_t> all = KnnQuery(measure, query, db, 10).ids;
  ASSERT_EQ(all.size(), 10u);
  const std::vector<size_t> expected_finite = {1, 3, 5, 7, 9};
  std::vector<size_t> head(all.begin(), all.begin() + 5);
  EXPECT_EQ(head, expected_finite);
  for (size_t i = 5; i < 10; ++i) {
    EXPECT_EQ(all[i] % 2, 0u) << "finite neighbor displaced by NaN";
  }

  // k smaller than the finite count: no NaN in the result at all.
  const std::vector<size_t> top3 = KnnQuery(measure, query, db, 3).ids;
  EXPECT_EQ(top3, (std::vector<size_t>{1, 3, 5}));
}

// Regression: k greater than the database size (and empty databases) must
// return a shorter ranking — the old CHECK aborted, which on the serving
// path let a client kill the process.
TEST(KnnTest, QueryClampsKToDatabaseSize) {
  DtwMeasure dtw;
  std::vector<traj::Trajectory> db;
  for (int i = 0; i < 4; ++i) {
    db.push_back(AsTraj(Line(5, 100.0, i * 50.0), i));
  }
  const traj::Trajectory query = AsTraj(Line(5));
  const KnnResult all = KnnQuery(dtw, query, db, 100);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all.ids, KnnQuery(dtw, query, db, 4).ids);
  EXPECT_TRUE(KnnQuery(dtw, query, db, 0).empty());
  EXPECT_TRUE(KnnQuery(dtw, query, {}, 3).empty());
}

}  // namespace
}  // namespace t2vec::dist
