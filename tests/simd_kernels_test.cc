// Exact bit-identity between the scalar and AVX2 kernel tiers, at the raw
// kernel level (kernels.h function table) and through every dispatched call
// site: GEMM variants, GRU forward, attention forward, and the full encoder
// batch pass at several thread counts. Equality is memcmp on the raw bytes —
// no tolerances anywhere; the tiers must produce the same words.
//
// On hardware without AVX2+FMA the cross-tier tests GTEST_SKIP (the scalar
// path is then the only tier and trivially self-identical).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/cpu.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ivf_index.h"
#include "core/model.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "traj/tokenizer.h"

namespace t2vec::nn {
namespace {

bool HaveAvx2() { return SimdTierSupported(SimdTier::kAvx2); }

// Forces a dispatch tier for a scope and restores the previous one after.
class ScopedTier {
 public:
  explicit ScopedTier(SimdTier tier) : prev_(ActiveSimdTier()) {
    SetSimdTier(tier);
  }
  ~ScopedTier() { SetSimdTier(prev_); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  SimdTier prev_;
};

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, float scale = 1.0f) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return m;
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform(-2.0, 2.0));
  return v;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << " diverged between tiers";
}

// --------------------------------------------------------------------------
// Raw kernel table: every entry point, scalar vs AVX2, odd tail sizes
// included.
// --------------------------------------------------------------------------

TEST(SimdKernelsTest, DotAndDot4BitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& s = KernelsFor(SimdTier::kScalar);
  const KernelOps& v = KernelsFor(SimdTier::kAvx2);
  ASSERT_STREQ(s.name, "scalar");
  ASSERT_STREQ(v.name, "avx2");
  Rng rng(11);
  for (size_t k : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 64u, 129u}) {
    const std::vector<float> x0 = RandomVec(k, rng);
    const std::vector<float> x1 = RandomVec(k, rng);
    const std::vector<float> x2 = RandomVec(k, rng);
    const std::vector<float> x3 = RandomVec(k, rng);
    const std::vector<float> y = RandomVec(k, rng);

    const float ds = s.dot(x0.data(), y.data(), k);
    const float dv = v.dot(x0.data(), y.data(), k);
    EXPECT_EQ(std::memcmp(&ds, &dv, sizeof(float)), 0) << "dot k=" << k;

    float outs[4], outv[4];
    s.dot4(x0.data(), x1.data(), x2.data(), x3.data(), y.data(), k, outs);
    v.dot4(x0.data(), x1.data(), x2.data(), x3.data(), y.data(), k, outv);
    EXPECT_EQ(std::memcmp(outs, outv, sizeof(outs)), 0) << "dot4 k=" << k;

    // dot4 lane 0 must also match plain dot (shared reduction shape).
    EXPECT_EQ(std::memcmp(&outs[0], &ds, sizeof(float)), 0)
        << "dot4 vs dot k=" << k;
  }
}

TEST(SimdKernelsTest, Tile8x32BitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& s = KernelsFor(SimdTier::kScalar);
  const KernelOps& v = KernelsFor(SimdTier::kAvx2);
  Rng rng(12);
  for (size_t depth : {1u, 5u, 8u, 37u}) {
    for (bool strided_a : {false, true}) {
      // Row-major A (8 x lda, lda >= depth) or transposed A (depth x lda,
      // lda >= 8): a[r * row_stride + p * step_stride] stays in bounds.
      const size_t lda = strided_a ? 8 : 64;
      const std::vector<float> a =
          RandomVec(strided_a ? depth * lda : 8 * lda, rng);
      const std::vector<float> b = RandomVec(depth * 40, rng);
      std::vector<float> accs = RandomVec(8 * 32, rng);
      std::vector<float> accv = accs;
      const size_t row_stride = strided_a ? 1 : lda;
      const size_t step_stride = strided_a ? lda : 1;
      s.tile8x32(accs.data(), a.data(), row_stride, step_stride, b.data(),
                 /*ldb=*/40, /*p0=*/0, /*p1=*/depth, /*alpha=*/1.25f);
      v.tile8x32(accv.data(), a.data(), row_stride, step_stride, b.data(),
                 40, 0, depth, 1.25f);
      EXPECT_EQ(std::memcmp(accs.data(), accv.data(),
                            accs.size() * sizeof(float)),
                0)
          << "tile8x32 depth=" << depth << " strided_a=" << strided_a;
    }
  }
}

TEST(SimdKernelsTest, F64KernelsBitIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& s = KernelsFor(SimdTier::kScalar);
  const KernelOps& v = KernelsFor(SimdTier::kAvx2);
  Rng rng(13);
  for (size_t n : {0u, 1u, 4u, 7u, 8u, 9u, 24u, 100u, 257u}) {
    const std::vector<float> x = RandomVec(n, rng);
    const std::vector<float> y = RandomVec(n, rng);
    const double results[6] = {
        s.sqnorm(x.data(), n),           v.sqnorm(x.data(), n),
        s.dot_f64(x.data(), y.data(), n), v.dot_f64(x.data(), y.data(), n),
        s.sqdist_f64(x.data(), y.data(), n),
        v.sqdist_f64(x.data(), y.data(), n)};
    EXPECT_EQ(std::memcmp(&results[0], &results[1], sizeof(double)), 0)
        << "sqnorm n=" << n;
    EXPECT_EQ(std::memcmp(&results[2], &results[3], sizeof(double)), 0)
        << "dot_f64 n=" << n;
    EXPECT_EQ(std::memcmp(&results[4], &results[5], sizeof(double)), 0)
        << "sqdist_f64 n=" << n;
  }
}

TEST(SimdKernelsTest, Int8DotExactAndIdentical) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const KernelOps& s = KernelsFor(SimdTier::kScalar);
  const KernelOps& v = KernelsFor(SimdTier::kAvx2);
  Rng rng(14);
  for (size_t k : {0u, 1u, 15u, 16u, 17u, 33u, 64u, 200u}) {
    std::vector<int8_t> x(k), y(k);
    for (size_t i = 0; i < k; ++i) {
      x[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(256)) - 128);
      y[i] = static_cast<int8_t>(static_cast<int>(rng.UniformInt(256)) - 128);
    }
    EXPECT_EQ(s.dot_i8(x.data(), y.data(), k), v.dot_i8(x.data(), y.data(), k))
        << "dot_i8 k=" << k;
  }
  // The worst case (-128 * -128 everywhere) must not saturate any
  // intermediate width.
  const size_t k = 96;
  std::vector<int8_t> worst(k, static_cast<int8_t>(-128));
  const int32_t expect = static_cast<int32_t>(k) * 128 * 128;
  EXPECT_EQ(s.dot_i8(worst.data(), worst.data(), k), expect);
  EXPECT_EQ(v.dot_i8(worst.data(), worst.data(), k), expect);
}

TEST(SimdKernelsTest, UnsupportedTierFallsBackToScalarTable) {
  // KernelsFor never returns a table the machine cannot execute.
  if (HaveAvx2()) GTEST_SKIP() << "machine has AVX2; fallback untestable";
  EXPECT_STREQ(KernelsFor(SimdTier::kAvx2).name, "scalar");
}

TEST(SimdKernelsTest, SetSimdTierClampsToSupported) {
  const SimdTier before = ActiveSimdTier();
  const SimdTier installed = SetSimdTier(SimdTier::kAvx2);
  if (HaveAvx2()) {
    EXPECT_EQ(installed, SimdTier::kAvx2);
  } else {
    EXPECT_EQ(installed, SimdTier::kScalar);  // never-SIGILL guard
  }
  EXPECT_EQ(SetSimdTier(SimdTier::kScalar), SimdTier::kScalar);
  SetSimdTier(before);
}

// --------------------------------------------------------------------------
// Dispatched call sites: whole operations under SetSimdTier, memcmp'd.
// --------------------------------------------------------------------------

TEST(SimdDispatchTest, GemmVariantsBitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(21);
  // Shapes straddling the 8 x 32 micro-tile: full tiles, edge tiles, odd k.
  const struct {
    size_t m, k, n;
  } shapes[] = {{1, 1, 1}, {3, 5, 7}, {8, 16, 32}, {17, 33, 65}, {64, 48, 96}};
  for (const auto& sh : shapes) {
    const Matrix a = RandomMatrix(sh.m, sh.k, rng);
    const Matrix b = RandomMatrix(sh.k, sh.n, rng);
    const Matrix at = RandomMatrix(sh.k, sh.m, rng);
    const Matrix bt = RandomMatrix(sh.n, sh.k, rng);
    Matrix out_s(sh.m, sh.n), out_v(sh.m, sh.n);

    {
      ScopedTier tier(SimdTier::kScalar);
      Gemm(a, b, &out_s);
    }
    {
      ScopedTier tier(SimdTier::kAvx2);
      Gemm(a, b, &out_v);
    }
    ExpectBitIdentical(out_s, out_v, "Gemm");

    {
      ScopedTier tier(SimdTier::kScalar);
      GemmTransA(at, b, &out_s);
    }
    {
      ScopedTier tier(SimdTier::kAvx2);
      GemmTransA(at, b, &out_v);
    }
    ExpectBitIdentical(out_s, out_v, "GemmTransA");

    for (size_t segment : {size_t{0}, sh.k / 2}) {
      if (segment != 0 && sh.k % segment != 0) continue;
      Matrix seg_s = RandomMatrix(sh.m, sh.n, rng);
      Matrix seg_v = seg_s;
      {
        ScopedTier tier(SimdTier::kScalar);
        GemmTransBV(a, bt, seg_s, 0.75f, 1.0f, segment);
      }
      {
        ScopedTier tier(SimdTier::kAvx2);
        GemmTransBV(a, bt, seg_v, 0.75f, 1.0f, segment);
      }
      ExpectBitIdentical(seg_s, seg_v, "GemmTransBV");
    }
  }
}

TEST(SimdDispatchTest, SquaredNormAndDotBitIdenticalAcrossTiers) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(22);
  const Matrix m = RandomMatrix(5, 37, rng);
  const Matrix x = RandomMatrix(3, 43, rng);
  const Matrix y = RandomMatrix(3, 43, rng);
  double sq[2], dot[2];
  {
    ScopedTier tier(SimdTier::kScalar);
    sq[0] = m.SquaredNorm();
    dot[0] = Dot(x, y);
  }
  {
    ScopedTier tier(SimdTier::kAvx2);
    sq[1] = m.SquaredNorm();
    dot[1] = Dot(x, y);
  }
  EXPECT_EQ(std::memcmp(&sq[0], &sq[1], sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&dot[0], &dot[1], sizeof(double)), 0);
}

// Runs `forward` under the given tier and thread count and returns the
// concatenation of all produced matrices for memcmp.
template <typename Fn>
std::vector<Matrix> RunUnder(SimdTier tier, int threads, Fn&& forward) {
  ScopedTier scoped_tier(tier);
  ScopedNumThreads scoped_threads(threads);
  return forward();
}

TEST(SimdDispatchTest, GruForwardBitIdenticalAcrossTiersAndThreads) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(23);
  const size_t in_dim = 19, hidden = 27, batch = 6, steps = 5;
  Gru gru("g", in_dim, hidden, /*layers=*/2, rng);
  std::vector<Matrix> xs;
  for (size_t t = 0; t < steps; ++t) {
    xs.push_back(RandomMatrix(batch, in_dim, rng));
  }
  std::vector<std::vector<float>> masks(steps,
                                        std::vector<float>(batch, 1.0f));
  masks[steps - 1][0] = 0.0f;  // one sequence ends early
  masks[steps - 1][3] = 0.0f;

  auto run = [&] {
    Gru::ForwardResult result;
    gru.Forward(xs, nullptr, masks, &result);
    std::vector<Matrix> outs = result.TopOutputs();
    for (const Matrix& h : result.final_state.h) outs.push_back(h);
    return outs;
  };

  const std::vector<Matrix> ref = RunUnder(SimdTier::kScalar, 1, run);
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    for (int threads : {1, 2, 8}) {
      const std::vector<Matrix> got = RunUnder(tier, threads, run);
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        ExpectBitIdentical(ref[i], got[i], "Gru::Forward");
      }
    }
  }
}

TEST(SimdDispatchTest, AttentionForwardBitIdenticalAcrossTiersAndThreads) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(24);
  const size_t hidden = 22, batch = 4, src = 6, dec = 3;
  Attention attention("att", hidden, rng);
  std::vector<Matrix> dec_hs, enc_hs;
  for (size_t t = 0; t < dec; ++t) {
    dec_hs.push_back(RandomMatrix(batch, hidden, rng));
  }
  for (size_t s = 0; s < src; ++s) {
    enc_hs.push_back(RandomMatrix(batch, hidden, rng));
  }
  std::vector<std::vector<float>> src_masks(src,
                                            std::vector<float>(batch, 1.0f));
  src_masks[src - 1][1] = 0.0f;

  auto run = [&] {
    AttentionCache cache;
    attention.Forward(dec_hs, enc_hs, src_masks, &cache);
    return cache.output;
  };

  const std::vector<Matrix> ref = RunUnder(SimdTier::kScalar, 1, run);
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    for (int threads : {1, 2, 8}) {
      const std::vector<Matrix> got = RunUnder(tier, threads, run);
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        ExpectBitIdentical(ref[i], got[i], "Attention::Forward");
      }
    }
  }
}

TEST(SimdDispatchTest, EncodeBatchBitIdenticalAcrossTiersAndThreads) {
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  Rng rng(25);
  core::T2VecConfig config;
  config.embed_dim = 12;
  config.hidden = 20;
  config.layers = 2;
  const geo::Token vocab_size = 40;
  const core::EncoderDecoder model(config, vocab_size, rng);

  std::vector<traj::TokenSeq> seqs;
  Rng token_rng(26);
  for (size_t i = 0; i < 9; ++i) {
    traj::TokenSeq seq(3 + i % 4);
    for (auto& tok : seq) {
      tok = static_cast<geo::Token>(4 + token_rng.UniformInt(36));
    }
    seqs.push_back(seq);
  }

  auto run = [&] { return std::vector<Matrix>{model.EncodeBatch(seqs)}; };

  const std::vector<Matrix> ref = RunUnder(SimdTier::kScalar, 1, run);
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    for (int threads : {1, 2, 8}) {
      const std::vector<Matrix> got = RunUnder(tier, threads, run);
      ExpectBitIdentical(ref[0], got[0], "EncodeBatch");
    }
  }
}

TEST(SimdDispatchTest, IvfIndexBitIdenticalAcrossTiersAndThreads) {
  // The IVF quantizer routes every distance through the dispatched
  // sqdist_f64 kernel; k-means training and probing must therefore produce
  // the same snapshot bytes and the same neighbors on both tiers.
  if (!HaveAvx2()) GTEST_SKIP() << "no AVX2 on this machine";
  const size_t d = 16, n = 150;
  Rng rng(27);
  std::vector<float> data(n * d);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  std::vector<float> probes(4 * d);
  for (float& v : probes) v = static_cast<float>(rng.Gaussian());

  core::IndexConfig config;
  config.kind = core::IndexKind::kIvf;
  config.ivf_nlist = 4;
  config.ivf_nprobe = 2;
  config.ivf_train_iters = 3;
  config.ivf_seed = 5;
  config.ivf_train_per_list = 8;

  const std::string path =
      std::string(::testing::TempDir()) + "/simd_ivf.idx";
  auto run = [&] {
    core::IvfIndex index(d, config);
    for (size_t i = 0; i < n; ++i) index.Add({&data[i * d], d});
    EXPECT_TRUE(index.trained());
    EXPECT_TRUE(index.Save(path).ok());
    std::string bytes;
    EXPECT_TRUE(ReadFileToString(path, &bytes).ok());
    for (size_t q = 0; q < 4; ++q) {
      const core::KnnResult r = index.Query({&probes[q * d], d}, 9);
      bytes.append(reinterpret_cast<const char*>(r.ids.data()),
                   r.ids.size() * sizeof(size_t));
      bytes.append(reinterpret_cast<const char*>(r.distances.data()),
                   r.distances.size() * sizeof(double));
    }
    return bytes;
  };

  std::string reference;
  {
    ScopedTier tier(SimdTier::kScalar);
    ScopedNumThreads threads(1);
    reference = run();
  }
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2}) {
    for (int threads : {1, 2, 8}) {
      ScopedTier tier_guard(tier);
      ScopedNumThreads thread_guard(threads);
      const std::string got = run();
      ASSERT_EQ(got.size(), reference.size());
      EXPECT_EQ(std::memcmp(got.data(), reference.data(), got.size()), 0)
          << "IVF diverged at tier " << static_cast<int>(tier) << ", "
          << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace t2vec::nn
