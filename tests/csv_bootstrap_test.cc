#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "eval/bootstrap.h"
#include "traj/csv.h"

namespace t2vec {
namespace {

const geo::GeoPoint kPortoOrigin{-8.6, 41.15};

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(CsvTest, LoadsGroupedTrips) {
  const std::string path = WriteTemp("trips.csv",
                                     "trip_id,lon,lat\n"
                                     "1,-8.600,41.150\n"
                                     "1,-8.601,41.151\n"
                                     "1,-8.602,41.152\n"
                                     "2,-8.610,41.160\n"
                                     "2,-8.611,41.161\n");
  geo::LocalProjection projection(kPortoOrigin);
  Result<traj::Dataset> r = traj::LoadLonLatCsv(path, projection);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].id, 1);
  EXPECT_EQ(r.value()[0].size(), 3u);
  EXPECT_EQ(r.value()[1].id, 2);
  EXPECT_EQ(r.value()[1].size(), 2u);
  // The first point is the origin: projects to ~(0, 0).
  EXPECT_NEAR(r.value()[0].points[0].x, 0.0, 1e-6);
  EXPECT_NEAR(r.value()[0].points[0].y, 0.0, 1e-6);
  std::remove(path.c_str());
}

TEST(CsvTest, MinPointsFilter) {
  const std::string path = WriteTemp("short.csv",
                                     "1,-8.600,41.150\n"
                                     "2,-8.601,41.151\n"
                                     "2,-8.602,41.152\n"
                                     "2,-8.603,41.153\n");
  geo::LocalProjection projection(kPortoOrigin);
  Result<traj::Dataset> r = traj::LoadLonLatCsv(path, projection, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);  // Trip 1 (one point) dropped.
  EXPECT_EQ(r.value()[0].id, 2);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsMalformedRows) {
  geo::LocalProjection projection(kPortoOrigin);
  const std::string bad1 = WriteTemp("bad1.csv", "1,-8.6\n");
  EXPECT_FALSE(traj::LoadLonLatCsv(bad1, projection).ok());
  const std::string bad2 =
      WriteTemp("bad2.csv", "1,-8.6,41.1\n1,notanumber,41.2\n");
  EXPECT_FALSE(traj::LoadLonLatCsv(bad2, projection).ok());
  const std::string bad3 = WriteTemp("bad3.csv", "1,-200.0,41.1\n");
  EXPECT_FALSE(traj::LoadLonLatCsv(bad3, projection).ok());
  std::remove(bad1.c_str());
  std::remove(bad2.c_str());
  std::remove(bad3.c_str());
}

TEST(CsvTest, MissingFile) {
  geo::LocalProjection projection(kPortoOrigin);
  Result<traj::Dataset> r =
      traj::LoadLonLatCsv("/nonexistent.csv", projection);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, RoundTrip) {
  geo::LocalProjection projection(kPortoOrigin);
  traj::Dataset original;
  Rng rng(5);
  for (int t = 0; t < 3; ++t) {
    traj::Trajectory trip;
    trip.id = 10 + t;
    for (int i = 0; i < 6; ++i) {
      trip.points.push_back(
          {rng.Uniform(-4000, 4000), rng.Uniform(-4000, 4000)});
    }
    original.Add(std::move(trip));
  }
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(traj::SaveLonLatCsv(original, projection, path).ok());
  Result<traj::Dataset> loaded = traj::LoadLonLatCsv(path, projection);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t t = 0; t < original.size(); ++t) {
    ASSERT_EQ(loaded.value()[t].size(), original[t].size());
    for (size_t i = 0; i < original[t].size(); ++i) {
      // Sub-meter round trip through lon/lat at 10 significant digits.
      EXPECT_NEAR(loaded.value()[t].points[i].x, original[t].points[i].x,
                  0.5);
      EXPECT_NEAR(loaded.value()[t].points[i].y, original[t].points[i].y,
                  0.5);
    }
  }
  std::remove(path.c_str());
}

TEST(BootstrapTest, DegenerateSamples) {
  Rng rng(1);
  const eval::IntervalEstimate e =
      eval::BootstrapMean({5.0, 5.0, 5.0, 5.0}, 100, 0.05, rng);
  EXPECT_DOUBLE_EQ(e.mean, 5.0);
  EXPECT_DOUBLE_EQ(e.lower, 5.0);
  EXPECT_DOUBLE_EQ(e.upper, 5.0);
}

TEST(BootstrapTest, IntervalContainsMeanAndShrinksWithN) {
  Rng data_rng(2);
  auto make_samples = [&](size_t n) {
    std::vector<double> s;
    for (size_t i = 0; i < n; ++i) s.push_back(data_rng.Gaussian(10.0, 2.0));
    return s;
  };
  Rng rng(3);
  const auto small = eval::BootstrapMean(make_samples(30), 500, 0.05, rng);
  const auto large = eval::BootstrapMean(make_samples(3000), 500, 0.05, rng);
  EXPECT_LE(small.lower, small.mean);
  EXPECT_GE(small.upper, small.mean);
  EXPECT_LT(large.upper - large.lower, small.upper - small.lower);
  EXPECT_NEAR(large.mean, 10.0, 0.3);
}

TEST(BootstrapTest, CoverageSpotCheck) {
  // ~95% of intervals over repeated experiments should contain the true
  // mean; check it is at least loosely calibrated (>= 80% on 50 trials).
  Rng rng(4);
  int covered = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> samples;
    for (int i = 0; i < 40; ++i) samples.push_back(rng.Gaussian(3.0, 1.0));
    const auto e = eval::BootstrapMean(samples, 300, 0.05, rng);
    covered += (e.lower <= 3.0 && 3.0 <= e.upper);
  }
  EXPECT_GE(covered, 40);
}

TEST(BootstrapTest, RankOverload) {
  Rng rng(5);
  const auto e = eval::BootstrapMeanRank({1, 2, 3, 4, 5}, 200, 0.1, rng);
  EXPECT_DOUBLE_EQ(e.mean, 3.0);
  EXPECT_GE(e.lower, 1.0);
  EXPECT_LE(e.upper, 5.0);
}

}  // namespace
}  // namespace t2vec
