// IvfIndex determinism and snapshot contract (DESIGN.md §4e, §5).
//
// The headline guarantees under test:
//   - build-once, Add-one-at-a-time, and snapshot-replay construction
//     produce bit-identical indexes (Save bytes memcmp);
//   - results are bit-identical at 1/2/8 threads;
//   - pre-training queries are exactly VectorIndex's answers, and k is
//     clamped (over-asking degrades, never aborts);
//   - snapshots round-trip through both the full-read and the mmap loader,
//     and corrupted snapshots are rejected with a clean Status.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ann_index.h"
#include "core/ivf_index.h"
#include "core/vec_index.h"

namespace t2vec::core {
namespace {

std::string TestDir() {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ivf_index_test")
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<float> RandomRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * d);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  return data;
}

// Small quantizer so tests cross the training threshold cheaply:
// 4 lists x 8 rows/list -> trains at row 31.
IndexConfig SmallIvfConfig() {
  IndexConfig config;
  config.kind = IndexKind::kIvf;
  config.ivf_nlist = 4;
  config.ivf_nprobe = 2;
  config.ivf_train_iters = 4;
  config.ivf_seed = 5;
  config.ivf_train_per_list = 8;
  return config;
}

void AddAll(AnnIndex* index, const std::vector<float>& data, size_t d) {
  for (size_t i = 0; i * d < data.size(); ++i) {
    index->Add({&data[i * d], d});
  }
}

std::string SaveBytes(const AnnIndex& index, const std::string& path) {
  EXPECT_TRUE(index.Save(path).ok());
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok());
  return bytes;
}

TEST(IvfIndexTest, ExactBeforeTrainingThresholdThenTrains) {
  const size_t d = 8;
  const IndexConfig config = SmallIvfConfig();
  const std::vector<float> data = RandomRows(100, d, 41);

  IvfIndex ivf(d, config);
  VectorIndex exact(d);
  ASSERT_EQ(ivf.train_threshold(), 32u);
  for (size_t i = 0; i < ivf.train_threshold() - 1; ++i) {
    ivf.Add({&data[i * d], d});
    exact.Add({&data[i * d], d});
    ASSERT_FALSE(ivf.trained());
  }
  // Pre-training answers are the exact scan's, bit for bit.
  const std::vector<float> probe = RandomRows(1, d, 42);
  const KnnResult a = ivf.Query(probe, 10);
  const KnnResult b = exact.Query(probe, 10);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.distances, b.distances);

  // The threshold row triggers training; later rows index incrementally.
  ivf.Add({&data[(ivf.train_threshold() - 1) * d], d});
  EXPECT_TRUE(ivf.trained());
  for (size_t i = ivf.train_threshold(); i < 100; ++i) {
    ivf.Add({&data[i * d], d});
  }
  EXPECT_EQ(ivf.Size(), 100u);
  EXPECT_EQ(ivf.Query(probe, 5).size(), 5u);
}

TEST(IvfIndexTest, RestoreReplayMatchesLiveBuildBitForBit) {
  // Save the rows under kind=exact (no usable IVF aux), reload under
  // kind=ivf: Restore's OnAppend replay must reproduce the live build
  // exactly — training at the same row over the same prefix — so the two
  // indexes serialize to identical bytes and answer identically.
  const size_t d = 8;
  const std::vector<float> data = RandomRows(120, d, 43);
  const IndexConfig ivf_config = SmallIvfConfig();

  VectorIndex rows_only(d);
  for (size_t i = 0; i < 120; ++i) rows_only.Add({&data[i * d], d});
  const std::string exact_path = TestDir() + "/rows.exact.idx";
  ASSERT_TRUE(rows_only.Save(exact_path).ok());

  auto replayed = LoadIndex(ivf_config, exact_path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed.value()->kind(), IndexKind::kIvf);

  IvfIndex live(d, ivf_config);
  AddAll(&live, data, d);
  const std::string live_bytes = SaveBytes(live, TestDir() + "/live.idx");
  const std::string replay_bytes =
      SaveBytes(*replayed.value(), TestDir() + "/replay.idx");
  ASSERT_EQ(live_bytes.size(), replay_bytes.size());
  EXPECT_EQ(std::memcmp(live_bytes.data(), replay_bytes.data(),
                        live_bytes.size()),
            0);

  const std::vector<float> probe = RandomRows(1, d, 44);
  const KnnResult a = live.Query(probe, 7);
  const KnnResult b = replayed.value()->Query(probe, 7);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(IvfIndexTest, BitIdenticalAcrossThreadCounts) {
  const size_t d = 16;
  const std::vector<float> data = RandomRows(150, d, 45);
  const std::vector<float> probes = RandomRows(6, d, 46);
  const IndexConfig config = SmallIvfConfig();

  std::string reference_bytes;
  std::vector<KnnResult> reference_results;
  for (const int threads : {1, 2, 8}) {
    ScopedNumThreads guard(threads);
    IvfIndex index(d, config);
    AddAll(&index, data, d);
    ASSERT_TRUE(index.trained());
    const std::string bytes =
        SaveBytes(index, TestDir() + "/threads.idx");
    std::vector<KnnResult> results;
    for (size_t q = 0; q < 6; ++q) {
      results.push_back(index.Query({&probes[q * d], d}, 9));
    }
    if (threads == 1) {
      reference_bytes = bytes;
      reference_results = std::move(results);
      continue;
    }
    ASSERT_EQ(bytes.size(), reference_bytes.size());
    EXPECT_EQ(
        std::memcmp(bytes.data(), reference_bytes.data(), bytes.size()), 0)
        << "snapshot diverged at " << threads << " threads";
    for (size_t q = 0; q < 6; ++q) {
      EXPECT_EQ(results[q].ids, reference_results[q].ids)
          << "query " << q << " ids diverged at " << threads << " threads";
      EXPECT_EQ(results[q].distances, reference_results[q].distances)
          << "query " << q << " bits diverged at " << threads << " threads";
    }
  }
}

TEST(IvfIndexTest, SnapshotRoundTripsThroughBothLoaders) {
  const size_t d = 8;
  const std::vector<float> data = RandomRows(90, d, 47);
  const IndexConfig config = SmallIvfConfig();
  IvfIndex index(d, config);
  AddAll(&index, data, d);
  const std::string path = TestDir() + "/roundtrip.idx";
  const std::string bytes = SaveBytes(index, path);

  // nprobe is a query-time knob and must come from the live config, not the
  // snapshot; structural parameters come from the snapshot.
  IndexConfig wide = config;
  wide.ivf_nprobe = 3;

  auto loaded = LoadIndex(wide, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto mapped = OpenIndexMmap(wide, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  for (AnnIndex* reopened : {loaded.value().get(), mapped.value().get()}) {
    ASSERT_EQ(reopened->kind(), IndexKind::kIvf);
    ASSERT_EQ(reopened->Size(), index.Size());
    auto* ivf = static_cast<IvfIndex*>(reopened);
    EXPECT_TRUE(ivf->trained());
    EXPECT_EQ(ivf->nlist(), config.ivf_nlist);
    EXPECT_EQ(ivf->nprobe(), 3u);
    // Re-serializing a reopened index reproduces the file byte for byte.
    EXPECT_EQ(SaveBytes(*reopened, TestDir() + "/resave.idx"), bytes);
    // Same-nprobe queries match the original index exactly.
    ivf->set_nprobe(config.ivf_nprobe);
    const std::vector<float> probe = RandomRows(1, d, 48);
    const KnnResult a = index.Query(probe, 8);
    const KnnResult b = reopened->Query(probe, 8);
    EXPECT_EQ(a.ids, b.ids);
    EXPECT_EQ(a.distances, b.distances);
    // Zero-copy check for the mmap path: row 0 reads back the saved values.
    EXPECT_EQ(std::memcmp(reopened->RowPtr(0), data.data(),
                          d * sizeof(float)),
              0);
  }
}

TEST(IvfIndexTest, CorruptSnapshotsAreRejected) {
  const size_t d = 4;
  const std::vector<float> data = RandomRows(40, d, 49);
  const IndexConfig config = SmallIvfConfig();
  IvfIndex index(d, config);
  AddAll(&index, data, d);
  const std::string path = TestDir() + "/corrupt.idx";
  const std::string bytes = SaveBytes(index, path);
  const std::string mutated_path = TestDir() + "/mutated.idx";

  // Every truncation and every per-byte bit flip must fail both loaders
  // with a Status — never a crash or a silently wrong index.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(mutated_path, bytes.substr(0, cut)).ok());
    EXPECT_FALSE(LoadIndex(config, mutated_path).ok())
        << "truncation at byte " << cut << " accepted";
    EXPECT_FALSE(OpenIndexMmap(config, mutated_path).ok())
        << "mmap truncation at byte " << cut << " accepted";
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    ASSERT_TRUE(WriteFileAtomic(mutated_path, mutated).ok());
    EXPECT_FALSE(LoadIndex(config, mutated_path).ok())
        << "bit flip at byte " << i << " accepted";
    EXPECT_FALSE(OpenIndexMmap(config, mutated_path).ok())
        << "mmap bit flip at byte " << i << " accepted";
  }
}

TEST(IvfIndexTest, QueryClampsAndWidensToFurtherLists) {
  const size_t d = 8;
  const std::vector<float> data = RandomRows(80, d, 50);
  IndexConfig config = SmallIvfConfig();
  config.ivf_nprobe = 1;  // Force the widening path for large k.
  IvfIndex index(d, config);
  AddAll(&index, data, d);
  ASSERT_TRUE(index.trained());

  const std::vector<float> probe = RandomRows(1, d, 51);
  // k = Size(): one list cannot hold 80 rows, so probing must widen until
  // every row is a candidate — a short answer here would be a recall bug,
  // not an approximation.
  const KnnResult all = index.Query(probe, index.Size());
  EXPECT_EQ(all.size(), index.Size());
  // Over-asking clamps to Size(); k = 0 returns nothing.
  EXPECT_EQ(index.Query(probe, 1000).size(), index.Size());
  EXPECT_EQ(index.Query(probe, 0).size(), 0u);

  // Empty index: no rows, no abort.
  const IvfIndex empty(d, config);
  EXPECT_EQ(empty.Query(probe, 10).size(), 0u);
}

TEST(IvfIndexTest, StatsReportQuantizerState) {
  const size_t d = 8;
  const std::vector<float> data = RandomRows(64, d, 52);
  const IndexConfig config = SmallIvfConfig();
  IvfIndex index(d, config);
  AddAll(&index, data, d);
  const std::vector<float> probe = RandomRows(1, d, 53);
  (void)index.Query(probe, 5);
  (void)index.Query(probe, 5);

  const IndexStats stats = index.Stats();
  EXPECT_EQ(stats.kind, IndexKind::kIvf);
  EXPECT_EQ(stats.size, 64u);
  EXPECT_TRUE(stats.trained);
  EXPECT_EQ(stats.nlist, config.ivf_nlist);
  EXPECT_EQ(stats.nprobe, config.ivf_nprobe);
  EXPECT_EQ(stats.queries, 2);
  // nprobe=2 of 4 lists: a query scores a strict subset of the rows.
  EXPECT_GT(stats.candidates, 0);
  EXPECT_LT(stats.MeanCandidates(), 64.0);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"kind\":\"ivf\""), std::string::npos);
  EXPECT_NE(json.find("\"nprobe\":2"), std::string::npos);
}

}  // namespace
}  // namespace t2vec::core
