// Overload-governance tests (serve/server.h + serve/client.h + serve/net.h):
// hostile peers — a silent client, a one-byte-per-tick slowloris dribbler, a
// mid-response disconnect — are reaped or contained without touching other
// connections; the max_connections cap answers kUnavailable; wire-level
// deadlines (protocol v2) expire before the encode and before the WAL
// append; TcpClient times out against dead or hung servers instead of
// blocking forever; and RetryingClient reconnects, backs off with
// deterministic jitter, and maps a lost insert ack onto the store's
// duplicate-id reply.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "serve/client.h"
#include "serve/durable_store.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "traj/generator.h"

namespace t2vec::serve {
namespace {

using std::chrono::milliseconds;

class OverloadTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }

  static const core::T2Vec& Model() {
    static core::T2Vec* model = [] {
      const eval::ExperimentData data =
          eval::MakeData(eval::DatasetKind::kPortoLike, 120, 0);
      core::T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      return new core::T2Vec(
          core::T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      return new traj::Dataset(generator.Generate(30));
    }();
    return *trips;
  }

  static std::string FreshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "overload_test_" + name;
    (void)MakeDir(dir);
    std::remove((dir + "/store.snapshot").c_str());
    std::remove((dir + "/wal.log").c_str());
    return dir;
  }
};

/// A raw connected socket with a bounded recv, for playing hostile peer.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  timeval timeout{};
  timeout.tv_sec = 10;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

/// Blocks (bounded by SO_RCVTIMEO) until the server closes `fd`; returns the
/// wait in milliseconds, or -1 if the socket did not close in time.
int64_t MillisUntilClosed(int fd) {
  const auto start = std::chrono::steady_clock::now();
  char sink[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, sink, sizeof(sink), 0);
    if (got == 0 || (got < 0 && errno != EINTR)) break;
    if (got < 0) continue;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<milliseconds>(elapsed).count();
}

/// Sends one already-encoded request payload on a raw socket and parses the
/// single response frame — the only way to ship wire encodings TcpClient
/// refuses to produce (e.g. a flagged deadline of 0 ms).
Result<Response> RawCall(uint16_t port, const std::string& payload) {
  const int fd = RawConnect(port);
  std::string wire;
  AppendFrame(payload, &wire);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::string response_payload;
    size_t consumed = 0;
    const FrameStatus status = ParseFrame(buffer, &response_payload, &consumed);
    if (status == FrameStatus::kCorrupt) {
      ::close(fd);
      return Status::IoError("RawCall: corrupt response frame");
    }
    if (status == FrameStatus::kOk) {
      ::close(fd);
      return ParseResponse(response_payload);
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      ::close(fd);
      return Status::IoError("RawCall: connection closed before response");
    }
    buffer.append(chunk, static_cast<size_t>(got));
  }
}

// --- Protocol v2: the deadline field ---------------------------------------

TEST_F(OverloadTest, DeadlineFieldRoundTrips) {
  Request request;
  request.opcode = Opcode::kKnn;
  request.trajectory = Trips()[0];
  request.k = 3;
  request.has_deadline = true;
  request.deadline_ms = 1500;
  Result<Request> parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().has_deadline);
  EXPECT_EQ(parsed.value().deadline_ms, 1500u);
  EXPECT_EQ(parsed.value().opcode, Opcode::kKnn);
  EXPECT_EQ(parsed.value().k, 3u);
}

TEST_F(OverloadTest, DeadlineFreeRequestsStayV1ByteIdentical) {
  // A request without a deadline must not set the flag — the v2 encoder
  // emits exactly the v1 bytes, so old servers keep parsing it.
  Request request;
  request.opcode = Opcode::kStats;
  const std::string payload = EncodeRequest(request);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(static_cast<uint8_t>(payload[0]) & kDeadlineFlag, 0);
  Result<Request> parsed = ParseRequest(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().has_deadline);
}

TEST_F(OverloadTest, FlaggedRequestWithTruncatedDeadlineFailsSoft) {
  std::string payload;
  payload.push_back(static_cast<char>(static_cast<uint8_t>(Opcode::kStats) |
                                      kDeadlineFlag));
  payload.push_back('\x01');  // Two of the four deadline bytes.
  payload.push_back('\x00');
  Result<Request> parsed = ParseRequest(payload);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

// --- Hostile peers ----------------------------------------------------------

TEST_F(OverloadTest, SilentIdleClientIsReapedOthersUnaffected) {
  const std::string dir = FreshDir("idle");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.idle_timeout = milliseconds(500);
  TcpServer server(&Model(), store.value().get(), options);
  ASSERT_TRUE(server.Start().ok());

  const int idle_fd = RawConnect(server.port());
  // A live client keeps making requests across the idle window — activity
  // is what must exempt it from the reaper.
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  std::atomic<bool> reaping_done{false};
  int live_calls_ok = 0;
  std::thread pinger([&] {
    while (!reaping_done.load()) {
      Result<std::string> ping = client.value()->Stats();
      ASSERT_TRUE(ping.ok()) << "live connection broken during reap: "
                             << ping.status().ToString();
      ++live_calls_ok;
      std::this_thread::sleep_for(milliseconds(100));
    }
  });

  // The acceptance bar: reaped within 2x the idle timeout.
  const int64_t reap_ms = MillisUntilClosed(idle_fd);
  reaping_done.store(true);
  pinger.join();
  ::close(idle_fd);
  EXPECT_GE(reap_ms, 0);
  EXPECT_LE(reap_ms, 2 * 500);
  EXPECT_GE(server.metrics().timeouts.value(), 1);

  // The well-behaved connection lived through the reaping, on both sides of
  // it: it kept answering during the wait and still answers now.
  EXPECT_GE(live_calls_ok, 2);
  Result<std::string> stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("\"timeouts\": "), std::string::npos);
}

TEST_F(OverloadTest, SlowLorisDribbleIsReaped) {
  const std::string dir = FreshDir("slowloris");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.idle_timeout = milliseconds(60'000);  // Idle reap must not fire.
  options.read_timeout = milliseconds(400);
  TcpServer server(&Model(), store.value().get(), options);
  ASSERT_TRUE(server.Start().ok());

  // Dribble a valid stats request one byte per 100 ms: every byte resets an
  // idle clock, but the frame clock runs from the first byte.
  std::string wire;
  AppendFrame(EncodeRequest(Request{}), &wire);
  const int fd = RawConnect(server.port());
  const auto start = std::chrono::steady_clock::now();
  bool server_hung_up = false;
  for (char byte : wire) {
    if (::send(fd, &byte, 1, MSG_NOSIGNAL) != 1) {
      server_hung_up = true;
      break;
    }
    std::this_thread::sleep_for(milliseconds(100));
  }
  // Either the send already failed, or the next recv observes the close.
  const int64_t reap_ms = MillisUntilClosed(fd);
  const auto total = std::chrono::duration_cast<milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  ::close(fd);
  EXPECT_GE(reap_ms, 0);
  // The whole exchange ended within ~2x the read timeout, nowhere near the
  // 23-byte x 100 ms the dribbler wanted (server_hung_up covers the send
  // path noticing first).
  EXPECT_LE(total, 2 * 400) << "server_hung_up=" << server_hung_up;
  EXPECT_GE(server.metrics().timeouts.value(), 1);
}

TEST_F(OverloadTest, MidResponseDisconnectIsContained) {
  const std::string dir = FreshDir("midresp");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  // A peer that fires a valid insert (the encode gives the server work to
  // do) and slams the door with an RST before the response can be sent.
  // Repeat a few times — the race usually lands first try, but the
  // assertion below only needs one send failure.
  for (int i = 0; i < 5 && server.metrics().send_errors.value() == 0; ++i) {
    Request request;
    request.opcode = Opcode::kInsert;
    request.trajectory = Trips()[static_cast<size_t>(i)];
    request.trajectory.id = 9000 + i;
    std::string wire;
    AppendFrame(EncodeRequest(request), &wire);
    const int fd = RawConnect(server.port());
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    linger hard{};
    hard.l_onoff = 1;
    hard.l_linger = 0;  // close() -> RST, not FIN.
    (void)::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
    std::this_thread::sleep_for(milliseconds(200));
  }
  EXPECT_GE(server.metrics().send_errors.value(), 1);

  // The process and the listener survived; a fresh client works.
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<std::string> stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("\"send_errors\": "), std::string::npos);
}

// --- Connection governance --------------------------------------------------

TEST_F(OverloadTest, OverCapConnectionGetsUnavailableFrame) {
  const std::string dir = FreshDir("cap");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.max_connections = 2;
  TcpServer server(&Model(), store.value().get(), options);
  ASSERT_TRUE(server.Start().ok());

  const int held1 = RawConnect(server.port());
  const int held2 = RawConnect(server.port());
  // Give the accept loop a moment to register both before the third lands.
  std::this_thread::sleep_for(milliseconds(100));

  Result<std::unique_ptr<TcpClient>> over =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(over.ok());
  Result<std::string> rejected = over.value()->Stats();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("max_connections"),
            std::string::npos);
  EXPECT_GE(server.metrics().rejected_connections.value(), 1);

  // Capacity returns when a held connection leaves.
  ::close(held1);
  Result<std::string> stats = Status::Unavailable("not tried");
  for (int attempt = 0; attempt < 50; ++attempt) {
    Result<std::unique_ptr<TcpClient>> retry =
        TcpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(retry.ok());
    stats = retry.value()->Stats();
    if (stats.ok()) break;
    std::this_thread::sleep_for(milliseconds(50));
  }
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  ::close(held2);
}

TEST_F(OverloadTest, StopDrainsIdleConnectionsGracefully) {
  const std::string dir = FreshDir("drain");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Stats().ok());

  // Stop() with a live (idle) connection: the drain path shuts its read
  // side, the connection thread exits on its own, and the exit is counted
  // as drained, not dropped.
  server.Stop();
  EXPECT_GE(server.metrics().drained_connections.value(), 1);
}

TEST_F(OverloadTest, AcceptLoopSurvivesTransientAcceptFailure) {
  const std::string dir = FreshDir("acceptfault");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  // The old accept loop exited on ANY accept error, silently bricking the
  // listener. Inject an fd-exhaustion error into the next accept and prove
  // the loop keeps serving.
  fault::Arm("net.accept", 1, EMFILE);
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<std::string> stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(fault::HitCount("net.accept"), 1u);
}

// --- Wire deadlines ---------------------------------------------------------

TEST_F(OverloadTest, ExpiredInsertDeadlineNeverTouchesTheWal) {
  const std::string dir = FreshDir("deadline_wal");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());
  const uint64_t wal_before = store.value()->wal_bytes();

  // A flagged deadline of 0 ms is expired on arrival: TcpClient never
  // produces this encoding (deadline_ms = 0 means "none"), so ship it raw.
  Request request;
  request.opcode = Opcode::kInsert;
  request.trajectory = Trips()[0];
  request.trajectory.id = 4242;
  request.has_deadline = true;
  request.deadline_ms = 0;
  Result<Response> response = RawCall(server.port(), EncodeRequest(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status.code(), StatusCode::kDeadlineExceeded);

  // The request died before durability: no WAL append, no store row.
  EXPECT_EQ(store.value()->wal_bytes(), wal_before);
  EXPECT_EQ(store.value()->size(), 0u);
  EXPECT_FALSE(store.value()->Contains(4242));
}

TEST_F(OverloadTest, GenerousDeadlineRidesAlongAndSucceeds) {
  const std::string dir = FreshDir("deadline_ok");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Result<int64_t> inserted =
      client.value()->Insert(Trips()[1], /*deadline_ms=*/30'000);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_TRUE(store.value()->Contains(Trips()[1].id));
  Result<EmbeddingStore::Neighbors> near =
      client.value()->Knn(Trips()[1], 1, /*deadline_ms=*/30'000);
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  ASSERT_EQ(near.value().size(), 1u);
  EXPECT_EQ(near.value().ids[0], Trips()[1].id);
}

// --- Client timeouts and retries --------------------------------------------

TEST_F(OverloadTest, ClientTimesOutAgainstHungServerInsteadOfBlocking) {
  // A listener that never accepts: connect lands in the backlog and
  // completes, but no response will ever come.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len),
            0);
  const uint16_t port = ntohs(bound.sin_port);

  TcpClient::Options options;
  options.recv_timeout = milliseconds(300);
  const auto start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<std::string> stats = client.value()->Stats();
  const auto elapsed = std::chrono::duration_cast<milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(stats.status().message().find("recv"), std::string::npos);
  EXPECT_LT(elapsed, 5'000);  // Bounded — the old client hung forever here.
  ::close(listener);
}

TEST_F(OverloadTest, ConnectToDeadPortFailsFastNotForever) {
  // Port from an immediately-closed listener: connect gets RST (refused).
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len),
            0);
  const uint16_t dead_port = ntohs(bound.sin_port);
  ::close(listener);

  const auto start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", dead_port);
  const auto elapsed = std::chrono::duration_cast<milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(client.ok());
  EXPECT_LT(elapsed, 5'000);
}

TEST_F(OverloadTest, RetryingClientRecoversALostInsertAck) {
  const std::string dir = FreshDir("lost_ack");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  RetryOptions retry;
  retry.initial_backoff = milliseconds(5);
  retry.jitter_seed = 7;
  RetryingClient client("127.0.0.1", server.port(), retry);

  // net.send hit 1 is this client's request frame; hit 2 is the server's
  // response — the ack of an insert that was already fsynced. Killing hit 2
  // reproduces exactly the lost-ack window.
  traj::Trajectory trip = Trips()[2];
  trip.id = 777;
  fault::Arm("net.send", 2, EPIPE);
  Result<int64_t> inserted = client.Insert(trip);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(inserted.value(), 777);
  // The retry hit the duplicate-id answer and mapped it to success; the
  // store holds exactly one copy.
  EXPECT_GE(client.retries(), 1);
  EXPECT_TRUE(store.value()->Contains(777));
  EXPECT_EQ(store.value()->size(), 1u);
}

TEST_F(OverloadTest, RetryingClientRidesOutAServerRestart) {
  const std::string dir = FreshDir("restart");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  auto server = std::make_unique<TcpServer>(&Model(), store.value().get());
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  RetryOptions retry;
  retry.max_attempts = 8;
  retry.initial_backoff = milliseconds(20);
  retry.max_backoff = milliseconds(200);
  retry.jitter_seed = 11;
  RetryingClient client("127.0.0.1", port, retry);
  ASSERT_TRUE(client.Insert(Trips()[3]).ok());

  // Bounce the server on the same port; the client's Knn rides out the
  // outage — connect-refused while it is down is a retryable transport
  // failure, and the backoff schedule outlasts the restart.
  server.reset();
  std::thread restarter([&] {
    std::this_thread::sleep_for(milliseconds(150));
    ServerOptions options;
    options.port = port;
    server =
        std::make_unique<TcpServer>(&Model(), store.value().get(), options);
    EXPECT_TRUE(server->Start().ok());
  });
  Result<EmbeddingStore::Neighbors> near = client.Knn(Trips()[3], 1);
  restarter.join();
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  EXPECT_GE(client.reconnects(), 2);  // Initial connect + at least one more.
}

TEST_F(OverloadTest, NoRetryAfterDeadline) {
  // Hung listener again: the request deadline expires in transport, and the
  // retrying client must stop immediately — never retry after a deadline.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len),
            0);

  RetryOptions retry;
  retry.socket.recv_timeout = milliseconds(100);
  RetryingClient client("127.0.0.1", ntohs(bound.sin_port), retry);
  Result<std::string> stats = client.Stats(/*deadline_ms=*/200);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.retries(), 0);
  ::close(listener);
}

}  // namespace
}  // namespace t2vec::serve
