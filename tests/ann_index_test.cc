// AnnIndex interface conformance over every backend (DESIGN.md §4e).
//
// The same contract checks run against exact, LSH, and IVF indexes built
// through CreateIndex — the factory every serving path uses — so a new
// backend cannot land without honoring the clamp, snapshot, restore, and
// stats semantics the serving layer depends on.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "core/ann_index.h"

namespace t2vec::core {
namespace {

std::string TestDir() {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ann_index_test")
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<float> RandomRows(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(n * d);
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  return data;
}

// One config per backend, sized so the IVF quantizer actually trains on the
// conformance corpus (threshold 4 x 8 = 32 < 120 rows).
IndexConfig ConfigFor(IndexKind kind) {
  IndexConfig config;
  config.kind = kind;
  config.lsh_tables = 4;
  config.lsh_bits = 8;
  config.lsh_seed = 7;
  config.ivf_nlist = 4;
  config.ivf_nprobe = 2;
  config.ivf_train_iters = 3;
  config.ivf_seed = 11;
  config.ivf_train_per_list = 8;
  return config;
}

constexpr IndexKind kAllKinds[] = {IndexKind::kExact, IndexKind::kLsh,
                                   IndexKind::kIvf};

class AnnIndexConformanceTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(AnnIndexConformanceTest, FactoryBuildsTheConfiguredKind) {
  const IndexConfig config = ConfigFor(GetParam());
  auto index = CreateIndex(config, 16);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value()->kind(), GetParam());
  EXPECT_EQ(index.value()->Size(), 0u);
  EXPECT_EQ(index.value()->dim(), 16u);
}

TEST_P(AnnIndexConformanceTest, AddQueryAndClampContract) {
  const size_t d = 8;
  const IndexConfig config = ConfigFor(GetParam());
  auto created = CreateIndex(config, d);
  ASSERT_TRUE(created.ok());
  AnnIndex& index = *created.value();

  const std::vector<float> data = RandomRows(120, d, 61);
  for (size_t i = 0; i < 120; ++i) {
    index.Add({&data[i * d], d});
    ASSERT_EQ(index.Size(), i + 1);
  }
  // RowPtr returns the stored bytes verbatim.
  for (const size_t r : {size_t{0}, size_t{60}, size_t{119}}) {
    EXPECT_EQ(std::memcmp(index.RowPtr(r), &data[r * d], d * sizeof(float)),
              0);
  }

  const std::vector<float> probe = RandomRows(1, d, 62);
  // Self-query: the nearest neighbor of a stored row is that row.
  const KnnResult self = index.Query({&data[0], d}, 1);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self.ids[0], 0u);
  EXPECT_EQ(self.distances[0], 0.0);

  // Distances ascend and ids stay in range.
  const KnnResult top = index.Query(probe, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_LT(top.ids[i], 120u);
    if (i > 0) {
      EXPECT_GE(top.distances[i], top.distances[i - 1]);
    }
  }

  // k clamps: over-asking returns every row, k = 0 returns nothing.
  EXPECT_EQ(index.Query(probe, 1000).size(), 120u);
  EXPECT_EQ(index.Query(probe, 0).size(), 0u);
}

TEST_P(AnnIndexConformanceTest, EmptyIndexNeverAborts) {
  const IndexConfig config = ConfigFor(GetParam());
  auto created = CreateIndex(config, 4);
  ASSERT_TRUE(created.ok());
  const std::vector<float> probe = RandomRows(1, 4, 63);
  EXPECT_EQ(created.value()->Query(probe, 10).size(), 0u);
}

TEST_P(AnnIndexConformanceTest, SnapshotRoundTripsThroughBothLoaders) {
  const size_t d = 8;
  const IndexConfig config = ConfigFor(GetParam());
  auto created = CreateIndex(config, d);
  ASSERT_TRUE(created.ok());
  AnnIndex& index = *created.value();
  const std::vector<float> data = RandomRows(100, d, 64);
  for (size_t i = 0; i < 100; ++i) index.Add({&data[i * d], d});

  const std::string path = TestDir() + "/conf.idx";
  ASSERT_TRUE(index.Save(path).ok());

  auto loaded = LoadIndex(config, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto mapped = OpenIndexMmap(config, path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const std::vector<float> probes = RandomRows(5, d, 65);
  for (AnnIndex* reopened : {loaded.value().get(), mapped.value().get()}) {
    ASSERT_EQ(reopened->kind(), GetParam());
    ASSERT_EQ(reopened->Size(), index.Size());
    for (size_t q = 0; q < 5; ++q) {
      const KnnResult a = index.Query({&probes[q * d], d}, 7);
      const KnnResult b = reopened->Query({&probes[q * d], d}, 7);
      EXPECT_EQ(a.ids, b.ids);
      EXPECT_EQ(a.distances, b.distances);
    }
    // A reopened index keeps growing: Add after restore works and the new
    // row is immediately queryable.
    const std::vector<float> extra = RandomRows(1, d, 66);
    reopened->Add(extra);
    EXPECT_EQ(reopened->Size(), index.Size() + 1);
    const KnnResult self = reopened->Query(extra, 1);
    ASSERT_EQ(self.size(), 1u);
    EXPECT_EQ(self.ids[0], index.Size());
  }
}

TEST_P(AnnIndexConformanceTest, CrossKindLoadRebuildsFromRows) {
  // A snapshot saved under any kind loads under any other configured kind:
  // the rows are authoritative, the aux structure is kind-private.
  const size_t d = 8;
  const IndexConfig config = ConfigFor(GetParam());
  auto created = CreateIndex(config, d);
  ASSERT_TRUE(created.ok());
  AnnIndex& index = *created.value();
  const std::vector<float> data = RandomRows(80, d, 67);
  for (size_t i = 0; i < 80; ++i) index.Add({&data[i * d], d});
  const std::string path = TestDir() + "/cross.idx";
  ASSERT_TRUE(index.Save(path).ok());

  for (const IndexKind other : kAllKinds) {
    auto reopened = LoadIndex(ConfigFor(other), path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.value()->kind(), other);
    ASSERT_EQ(reopened.value()->Size(), 80u);
    // Whatever the backend, a stored row's nearest neighbor is itself.
    const KnnResult self = reopened.value()->Query({&data[3 * d], d}, 1);
    ASSERT_EQ(self.size(), 1u);
    EXPECT_EQ(self.ids[0], 3u);
  }
}

TEST_P(AnnIndexConformanceTest, StatsCountQueriesAndCandidates) {
  const size_t d = 8;
  const IndexConfig config = ConfigFor(GetParam());
  auto created = CreateIndex(config, d);
  ASSERT_TRUE(created.ok());
  AnnIndex& index = *created.value();
  const std::vector<float> data = RandomRows(64, d, 68);
  for (size_t i = 0; i < 64; ++i) index.Add({&data[i * d], d});

  EXPECT_EQ(index.Stats().queries, 0);
  const std::vector<float> probe = RandomRows(1, d, 69);
  (void)index.Query(probe, 5);
  (void)index.Query(probe, 5);
  const IndexStats stats = index.Stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_GT(stats.candidates, 0);
  EXPECT_EQ(stats.kind, GetParam());
  EXPECT_EQ(stats.size, 64u);
  EXPECT_EQ(stats.dim, d);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find(std::string("\"kind\":\"") + IndexKindName(GetParam())),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AnnIndexConformanceTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& info) {
                           return std::string(IndexKindName(info.param));
                         });

TEST(IndexKindTest, NamesRoundTrip) {
  for (const IndexKind kind : kAllKinds) {
    auto parsed = ParseIndexKind(IndexKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseIndexKind("annoy").ok());
  EXPECT_FALSE(ParseIndexKind("").ok());
}

TEST(IndexConfigTest, ValidateNamesTheOffendingField) {
  IndexConfig lsh;
  lsh.kind = IndexKind::kLsh;
  lsh.lsh_bits = 25;
  const Status bad_bits = lsh.Validate();
  EXPECT_FALSE(bad_bits.ok());
  EXPECT_NE(bad_bits.message().find("lsh_bits"), std::string::npos);

  IndexConfig ivf;
  ivf.kind = IndexKind::kIvf;
  ivf.ivf_nlist = 0;
  const Status bad_nlist = ivf.Validate();
  EXPECT_FALSE(bad_nlist.ok());
  EXPECT_NE(bad_nlist.message().find("ivf_nlist"), std::string::npos);

  EXPECT_TRUE(IndexConfig{}.Validate().ok());
}

TEST(IndexFactoryTest, RejectsInvalidConfigAndZeroDim) {
  IndexConfig bad;
  bad.kind = IndexKind::kIvf;
  bad.ivf_nprobe = 0;
  EXPECT_FALSE(CreateIndex(bad, 8).ok());
  EXPECT_FALSE(CreateIndex(IndexConfig{}, 0).ok());
}

TEST(IndexFactoryTest, LoadRejectsNonSnapshotFiles) {
  const std::string path = TestDir() + "/not_an_index";
  ASSERT_TRUE(WriteFileAtomic(path, "these are not the bytes").ok());
  EXPECT_FALSE(LoadIndex(IndexConfig{}, path).ok());
  EXPECT_FALSE(OpenIndexMmap(IndexConfig{}, path).ok());
  EXPECT_FALSE(LoadIndex(IndexConfig{}, TestDir() + "/missing").ok());
  EXPECT_FALSE(OpenIndexMmap(IndexConfig{}, TestDir() + "/missing").ok());
}

}  // namespace
}  // namespace t2vec::core
