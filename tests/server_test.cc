// Network front-door tests (serve/server.h + serve/protocol.h): frame and
// payload codecs round-trip; hostile bytes (truncated frames, flipped CRCs,
// forged lengths, bad opcodes) fail soft; the TCP server answers
// encode/insert/knn/stats end to end with WAL-backed durability — a server
// killed mid-ingestion restarts, replays its WAL, and serves a
// byte-identical store; and no client input can abort the process.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/fs.h"
#include "core/t2vec.h"
#include "eval/experiments.h"
#include "serve/client.h"
#include "serve/durable_store.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "traj/generator.h"

namespace t2vec::serve {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DisarmAll(); }

  static const core::T2Vec& Model() {
    static core::T2Vec* model = [] {
      const eval::ExperimentData data =
          eval::MakeData(eval::DatasetKind::kPortoLike, 120, 0);
      core::T2VecConfig config;
      config.hidden = 24;
      config.embed_dim = 16;
      config.layers = 1;
      config.max_iterations = 8;
      config.validate_every = 100;
      config.pretrain_epochs = 1;
      config.r1_grid = {0.0, 0.4};
      config.r2_grid = {0.0};
      return new core::T2Vec(
          core::T2Vec::Train(data.train.trajectories(), config));
    }();
    return *model;
  }

  static const traj::Dataset& Trips() {
    static traj::Dataset* trips = [] {
      traj::SyntheticTrajectoryGenerator generator(
          traj::GeneratorConfig::PortoLike());
      return new traj::Dataset(generator.Generate(30));
    }();
    return *trips;
  }

  /// A fresh store directory under the test temp dir.
  static std::string FreshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "server_test_" + name;
    (void)MakeDir(dir);
    std::remove((dir + "/store.snapshot").c_str());
    std::remove((dir + "/wal.log").c_str());
    return dir;
  }

};

/// Connects a bare socket, writes `bytes`, reads whatever comes back until
/// the server answers or hangs up, and closes. Used to aim hostile input at
/// the server without the protocol client's framing in the way.
void RawExchange(uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
  // Give the server a bounded window to respond or hang up; either is fine,
  // the assertion is that it neither crashes nor wedges.
  timeval timeout{};
  timeout.tv_sec = 2;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[4096];
  (void)::recv(fd, sink, sizeof(sink), 0);
  ::close(fd);
}

// --- Protocol codecs ------------------------------------------------------

TEST_F(ServerTest, FrameRoundTripsAndDetectsCorruption) {
  std::string wire;
  AppendFrame("hello frame", &wire);
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(ParseFrame(wire, &payload, &consumed), FrameStatus::kOk);
  EXPECT_EQ(payload, "hello frame");
  EXPECT_EQ(consumed, wire.size());

  // Every proper prefix is kNeedMore — a slow sender must never be
  // mistaken for corruption.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_EQ(ParseFrame(wire.substr(0, cut), &payload, &consumed),
              FrameStatus::kNeedMore)
        << "cut at " << cut;
  }
  // Any flipped byte is kCorrupt (bad magic, bad CRC, or a length that no
  // longer matches the checksum) or a longer-frame kNeedMore — never kOk
  // with wrong bytes.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string damaged = wire;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    const FrameStatus status = ParseFrame(damaged, &payload, &consumed);
    EXPECT_NE(status, FrameStatus::kOk) << "flip at " << i;
  }
}

TEST_F(ServerTest, ForgedHugeLengthIsCorruptNotAnAllocation) {
  std::string wire;
  AppendFrame("x", &wire);
  // Overwrite payload_len with ~4 GiB; CRC no longer matters because the
  // length cap rejects it first.
  const uint32_t huge = 0xF0000000u;
  std::memcpy(wire.data() + 4, &huge, sizeof(huge));
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(ParseFrame(wire, &payload, &consumed), FrameStatus::kCorrupt);
}

TEST_F(ServerTest, RequestCodecRoundTripsEveryOpcode) {
  traj::Trajectory trip;
  trip.id = 42;
  trip.points = {{1.5, -2.5}, {3.0, 4.0}, {-5.25, 6.125}};
  for (const Opcode op :
       {Opcode::kEncode, Opcode::kInsert, Opcode::kKnn, Opcode::kStats}) {
    Request request;
    request.opcode = op;
    request.trajectory = trip;
    request.k = 7;
    Result<Request> parsed = ParseRequest(EncodeRequest(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().opcode, op);
    if (op == Opcode::kStats) continue;
    EXPECT_EQ(parsed.value().trajectory.id, trip.id);
    ASSERT_EQ(parsed.value().trajectory.points.size(), trip.points.size());
    for (size_t i = 0; i < trip.points.size(); ++i) {
      EXPECT_EQ(parsed.value().trajectory.points[i].x, trip.points[i].x);
      EXPECT_EQ(parsed.value().trajectory.points[i].y, trip.points[i].y);
    }
    if (op == Opcode::kKnn) {
      EXPECT_EQ(parsed.value().k, 7u);
    }
  }
}

TEST_F(ServerTest, HostileRequestPayloadsFailSoft) {
  // Unknown opcode.
  EXPECT_FALSE(ParseRequest(std::string("\x09", 1)).ok());
  // Empty payload.
  EXPECT_FALSE(ParseRequest("").ok());
  // Truncations at every byte of a valid knn request.
  Request request;
  request.opcode = Opcode::kKnn;
  request.trajectory.id = 7;
  request.trajectory.points = {{1.0, 2.0}, {3.0, 4.0}};
  request.k = 3;
  const std::string valid = EncodeRequest(request);
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    EXPECT_FALSE(ParseRequest(valid.substr(0, cut)).ok()) << "cut " << cut;
  }
  // Trailing garbage.
  EXPECT_FALSE(ParseRequest(valid + "zz").ok());
  // Forged point count pointing past the payload.
  std::string forged = valid;
  const uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(forged.data() + 1 + 8, &huge, sizeof(huge));
  EXPECT_FALSE(ParseRequest(forged).ok());
}

TEST_F(ServerTest, ResponseCodecRoundTripsEveryKind) {
  {
    const std::vector<float> vec = {1.0f, -2.0f, 3.5f};
    Result<Response> r = ParseResponse(EncodeEncodeResponse(vec));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().status.ok());
    EXPECT_EQ(r.value().vector, vec);
  }
  {
    Result<Response> r = ParseResponse(EncodeInsertResponse(-17));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().id, -17);
  }
  {
    EmbeddingStore::Neighbors n;
    n.ids = {5, 9};
    n.distances = {0.25, 1.75};
    Result<Response> r = ParseResponse(EncodeKnnResponse(n));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().neighbors.ids, n.ids);
    EXPECT_EQ(r.value().neighbors.distances, n.distances);
  }
  {
    Result<Response> r = ParseResponse(EncodeStatsResponse("{\"a\": 1}"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().stats_json, "{\"a\": 1}");
  }
  {
    Result<Response> r = ParseResponse(EncodeErrorResponse(
        Opcode::kInsert, Status::InvalidArgument("duplicate id 7")));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(r.value().status.message(), "duplicate id 7");
  }
}

// --- End-to-end TCP -------------------------------------------------------

TEST_F(ServerTest, EncodeInsertKnnStatsOverTcp) {
  const std::string dir = FreshDir("e2e");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // encode matches the in-process model bit for bit.
  Result<std::vector<float>> encoded = client.value()->Encode(Trips()[0]);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  const std::vector<float> local = Model().EncodeOne(Trips()[0]);
  ASSERT_EQ(encoded.value().size(), local.size());
  EXPECT_EQ(std::memcmp(encoded.value().data(), local.data(),
                        local.size() * sizeof(float)),
            0);

  // insert: acknowledged inserts land in the store.
  for (size_t i = 0; i < 5; ++i) {
    Result<int64_t> inserted = client.value()->Insert(Trips()[i]);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    EXPECT_EQ(inserted.value(), Trips()[i].id);
  }
  EXPECT_EQ(store.value()->size(), 5u);

  // Duplicate insert: an error response on a connection that stays usable.
  Result<int64_t> dup = client.value()->Insert(Trips()[0]);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  // knn: the nearest neighbor of an inserted trip is itself, and k is
  // clamped to the store size instead of failing (or aborting).
  Result<EmbeddingStore::Neighbors> near = client.value()->Knn(Trips()[2], 3);
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  ASSERT_EQ(near.value().size(), 3u);
  EXPECT_EQ(near.value().ids[0], Trips()[2].id);
  EXPECT_DOUBLE_EQ(near.value().distances[0], 0.0);
  Result<EmbeddingStore::Neighbors> clamped =
      client.value()->Knn(Trips()[2], 1000);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().size(), 5u);

  // stats: well-formed JSON covering every layer.
  Result<std::string> stats = client.value()->Stats();
  ASSERT_TRUE(stats.ok());
  for (const char* key : {"\"server\"", "\"service\"", "\"store\"",
                          "\"requests\"", "\"wal_bytes\"", "\"size\": 5"}) {
    EXPECT_NE(stats.value().find(key), std::string::npos)
        << "missing " << key << " in " << stats.value();
  }

  client.value().reset();
  server.Stop();
}

TEST_F(ServerTest, KnnOnEmptyStoreReturnsEmptyNotAbort) {
  const std::string dir = FreshDir("empty_knn");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<EmbeddingStore::Neighbors> near =
      client.value()->Knn(Trips()[0], 10);
  ASSERT_TRUE(near.ok()) << near.status().ToString();
  EXPECT_EQ(near.value().size(), 0u);
}

// Raw hostile bytes on the socket: the server answers errors or drops the
// one connection, and keeps serving everyone else.
TEST_F(ServerTest, HostileBytesCannotKillTheServer) {
  const std::string dir = FreshDir("hostile");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> attacks = {
      std::string("\x00\x00\x00\x00garbage without magic", 24),
      [] {  // Valid frame, unknown opcode payload.
        std::string wire;
        AppendFrame(std::string("\x66nonsense", 9), &wire);
        return wire;
      }(),
      [] {  // Valid frame, truncated trajectory body.
        std::string wire;
        AppendFrame(std::string("\x02\x01", 2), &wire);
        return wire;
      }(),
      [] {  // Corrupt CRC.
        std::string wire;
        AppendFrame("payload", &wire);
        wire[8] = static_cast<char>(wire[8] ^ 0xFF);
        return wire;
      }(),
  };
  for (const std::string& attack : attacks) {
    RawExchange(server.port(), attack);
  }
  // After every attack, a well-behaved client still gets service.
  Result<std::unique_ptr<TcpClient>> good =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(good.ok());
  Result<int64_t> inserted = good.value()->Insert(Trips()[0]);
  EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
}

// The acceptance scenario: kill the server mid-ingestion (a WAL fault makes
// one insert fail un-acked), restart over the same directory, and the
// replayed store is byte-identical to the acknowledged state.
TEST_F(ServerTest, KillAndReplayOverTcpIsByteIdentical) {
  const std::string dir = FreshDir("kill_replay");
  const std::string acked_snapshot = dir + "/acked.cmp";
  {
    Result<std::unique_ptr<DurableStore>> store =
        DurableStore::Open(dir, Model().config().hidden);
    ASSERT_TRUE(store.ok());
    TcpServer server(&Model(), store.value().get());
    ASSERT_TRUE(server.Start().ok());
    Result<std::unique_ptr<TcpClient>> client =
        TcpClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());

    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(client.value()->Insert(Trips()[i]).ok());
    }
    // The crash: the 9th insert dies at the WAL append site, so the client
    // gets an error and the insert is NOT acknowledged.
    fault::Arm("wal.append", 1, EIO);
    Result<int64_t> failed = client.value()->Insert(Trips()[8]);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
    fault::DisarmAll();

    ASSERT_TRUE(store.value()->SaveTo(acked_snapshot).ok());
    client.value().reset();
    server.Stop();
    // Store dropped here without compaction: the WAL is the only record.
  }
  // "Restart": reopen the directory, replay, serve.
  Result<std::unique_ptr<DurableStore>> reopened =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 8u);
  const std::string replayed_snapshot = dir + "/replayed.cmp";
  ASSERT_TRUE(reopened.value()->SaveTo(replayed_snapshot).ok());
  std::string acked;
  std::string replayed;
  ASSERT_TRUE(ReadFileToString(acked_snapshot, &acked).ok());
  ASSERT_TRUE(ReadFileToString(replayed_snapshot, &replayed).ok());
  EXPECT_EQ(acked, replayed);

  // And it serves: the replayed store answers kNN over TCP.
  TcpServer server(&Model(), reopened.value().get());
  ASSERT_TRUE(server.Start().ok());
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<EmbeddingStore::Neighbors> near = client.value()->Knn(Trips()[3], 1);
  ASSERT_TRUE(near.ok());
  ASSERT_EQ(near.value().size(), 1u);
  EXPECT_EQ(near.value().ids[0], Trips()[3].id);
}

TEST_F(ServerTest, ConcurrentClientsInsertDisjointIds) {
  const std::string dir = FreshDir("concurrent");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Result<std::unique_ptr<TcpClient>> client =
          TcpClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[c] = 1;
        return;
      }
      for (size_t i = 0; i < kPerClient; ++i) {
        traj::Trajectory trip = Trips()[(c * kPerClient + i) % Trips().size()];
        trip.id = static_cast<int64_t>(1000 + c * kPerClient + i);
        if (!client.value()->Insert(trip).ok()) failures[c] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  EXPECT_EQ(store.value()->size(), kClients * kPerClient);
}

// Regression: Stop() used to join the accept thread on its losing path
// without any lock, so a Stop() racing another Stop() (or the destructor —
// the common shutdown shape) could call join() on the same std::thread
// twice, which is undefined behavior. Stop now serializes the whole
// join/cleanup under a mutex; racing callers must all return cleanly, with
// live connections still drained exactly once.
TEST_F(ServerTest, ConcurrentStopCallsAreSafe) {
  const std::string dir = FreshDir("concurrent_stop");
  Result<std::unique_ptr<DurableStore>> store =
      DurableStore::Open(dir, Model().config().hidden);
  ASSERT_TRUE(store.ok());
  TcpServer server(&Model(), store.value().get());
  ASSERT_TRUE(server.Start().ok());

  // A live connection mid-request makes Stop's connection-drain path real.
  Result<std::unique_ptr<TcpClient>> client =
      TcpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->Insert(Trips()[0]).ok());

  constexpr int kStoppers = 4;
  std::vector<std::thread> stoppers;
  stoppers.reserve(kStoppers);
  for (int i = 0; i < kStoppers; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  // Idempotent afterwards too (the destructor will call it once more).
  server.Stop();
  EXPECT_EQ(store.value()->size(), 1u);
}

}  // namespace
}  // namespace t2vec::serve
