#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/model.h"
#include "core/pairs.h"
#include "gradcheck.h"
#include "nn/optimizer.h"

namespace t2vec::core {
namespace {

using ::t2vec::nn::testing::ExpectGradientsMatch;

T2VecConfig TinyConfig() {
  T2VecConfig config;
  config.embed_dim = 6;
  config.hidden = 7;
  config.layers = 2;
  config.loss = LossKind::kL1;
  return config;
}

TEST(BuildBatchTest, LayoutAndPadding) {
  TokenPair p1{{10, 11, 12}, {20, 21}};
  TokenPair p2{{13}, {22, 23, 24}};
  const Batch batch = BuildBatch({&p1, &p2});

  EXPECT_EQ(batch.batch_size, 2u);
  ASSERT_EQ(batch.src_steps.size(), 3u);     // max src len
  ASSERT_EQ(batch.target_steps.size(), 4u);  // max tgt len + EOS

  // Source layout.
  EXPECT_EQ(batch.src_steps[0][0], 10);
  EXPECT_EQ(batch.src_steps[0][1], 13);
  EXPECT_EQ(batch.src_steps[1][1], geo::kPadToken);
  EXPECT_EQ(batch.src_masks[1][1], 0.0f);
  EXPECT_EQ(batch.src_masks[2][0], 1.0f);

  // Decoder inputs start with BOS and shift the targets.
  EXPECT_EQ(batch.dec_input_steps[0][0], geo::kBosToken);
  EXPECT_EQ(batch.dec_input_steps[1][0], 20);
  EXPECT_EQ(batch.target_steps[0][0], 20);
  EXPECT_EQ(batch.target_steps[1][0], 21);
  EXPECT_EQ(batch.target_steps[2][0], geo::kEosToken);
  EXPECT_EQ(batch.target_steps[3][0], geo::kPadToken);
  EXPECT_EQ(batch.target_steps[3][1], geo::kEosToken);

  // Token accounting: (2 + 1) + (3 + 1).
  EXPECT_EQ(batch.target_tokens, 7u);
}

TEST(EncoderDecoderTest, RunBatchGradCheck) {
  // Full seq2seq gradient check through encoder, decoder, embedding, and
  // projection with the (deterministic) L1 loss.
  Rng rng(3);
  T2VecConfig config = TinyConfig();
  const geo::Token vocab_size = 12;
  EncoderDecoder model(config, vocab_size, rng);
  NllLoss loss(&model.projection());

  TokenPair p1{{4, 5, 6, 7}, {8, 9, 10}};
  TokenPair p2{{5, 7}, {9, 11, 4, 5}};
  const Batch batch = BuildBatch({&p1, &p2});

  // RunBatch returns the summed loss but scales gradients by 1/batch_size
  // (mean-per-sequence objective); divide so numeric and analytic agree.
  auto loss_fn = [&]() {
    return model.RunBatch(batch, &loss, /*accumulate_grads=*/false) /
           static_cast<double>(batch.batch_size);
  };

  for (nn::Parameter* p : model.Params()) p->ZeroGrad();
  model.RunBatch(batch, &loss, /*accumulate_grads=*/true);

  for (nn::Parameter* p : model.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 10,
                         /*seed=*/p->value.size());
  }
}

TEST(EncoderDecoderTest, EncodeDeterministicAndBatchInvariant) {
  Rng rng(5);
  T2VecConfig config = TinyConfig();
  EncoderDecoder model(config, 12, rng);

  const traj::TokenSeq a = {4, 5, 6, 7, 8};
  const traj::TokenSeq b = {9, 10};
  const nn::Matrix solo = model.EncodeBatch({a});
  const nn::Matrix batch = model.EncodeBatch({b, a, b});

  // Same sequence -> same vector, regardless of the batch around it.
  for (size_t j = 0; j < model.hidden(); ++j) {
    EXPECT_NEAR(batch.At(1, j), solo.At(0, j), 1e-5f);
    EXPECT_NEAR(batch.At(0, j), batch.At(2, j), 1e-6f);
  }
}

TEST(EncoderDecoderTest, EmptySequenceEncodesToZero) {
  Rng rng(6);
  EncoderDecoder model(TinyConfig(), 12, rng);
  const nn::Matrix out = model.EncodeBatch({{}, {4, 5}});
  for (size_t j = 0; j < model.hidden(); ++j) {
    EXPECT_EQ(out.At(0, j), 0.0f);
  }
  EXPECT_GT(out.SquaredNorm(), 0.0);
}

TEST(EncoderDecoderTest, DifferentSequencesGetDifferentVectors) {
  Rng rng(7);
  EncoderDecoder model(TinyConfig(), 12, rng);
  const nn::Matrix out = model.EncodeBatch({{4, 5, 6}, {7, 8, 9}});
  float diff = 0.0f;
  for (size_t j = 0; j < model.hidden(); ++j) {
    diff += std::fabs(out.At(0, j) - out.At(1, j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(EncoderDecoderTest, TrainingStepReducesLoss) {
  Rng rng(8);
  T2VecConfig config = TinyConfig();
  EncoderDecoder model(config, 12, rng);
  NllLoss loss(&model.projection());
  nn::Adam adam(model.Params(), 5e-3f);

  TokenPair p{{4, 5, 6, 7}, {8, 9, 10, 11}};
  const Batch batch = BuildBatch({&p});

  const double initial = model.RunBatch(batch, &loss, false);
  for (int step = 0; step < 120; ++step) {
    adam.ZeroGrad();
    model.RunBatch(batch, &loss, true);
    adam.Step();
  }
  const double final_loss = model.RunBatch(batch, &loss, false);
  EXPECT_LT(final_loss, 0.5 * initial);
}

TEST(PairsTest, GridOfVariants) {
  // A straight trip across 10 hot cells.
  geo::SpatialGrid grid({0, 0}, {1000, 100}, 100.0);
  std::vector<geo::Point> pts;
  for (int c = 0; c < 10; ++c) {
    pts.push_back(grid.CenterOf(grid.CellAt(0, c)));
    pts.push_back(grid.CenterOf(grid.CellAt(0, c)));
  }
  geo::HotCellVocab vocab(grid, pts, 2);

  traj::Trajectory trip;
  trip.id = 0;
  for (int i = 0; i < 10; ++i) trip.points.push_back({i * 100.0 + 50, 50});

  T2VecConfig config;
  config.r1_grid = {0.0, 0.5};
  config.r2_grid = {0.0, 0.5};
  config.reverse_source = false;
  Rng rng(9);
  const auto pairs = BuildTrainingPairs({trip}, vocab, config, rng);
  ASSERT_EQ(pairs.size(), 4u);  // 2 x 2 grid.
  for (const TokenPair& p : pairs) {
    EXPECT_EQ(p.tgt.size(), 10u);  // Target is always the original.
    EXPECT_GE(p.src.size(), 2u);
    EXPECT_LE(p.src.size(), 10u);
    // Variants keep the endpoints, so first/last tokens agree (possibly
    // distorted by 30 m noise into a neighboring cell; allow 1 cell).
    // With r2 = 0, exact:
  }
  // The (0, 0) variant is the identity.
  EXPECT_EQ(pairs[0].src, pairs[0].tgt);
}

TEST(PairsTest, ReverseSourceReversesOnlySrc) {
  geo::SpatialGrid grid({0, 0}, {1000, 100}, 100.0);
  std::vector<geo::Point> pts;
  for (int c = 0; c < 10; ++c) {
    pts.push_back(grid.CenterOf(grid.CellAt(0, c)));
  }
  geo::HotCellVocab vocab(grid, pts, 1);
  traj::Trajectory trip;
  trip.id = 0;
  for (int i = 0; i < 10; ++i) trip.points.push_back({i * 100.0 + 50, 50});

  T2VecConfig config;
  config.r1_grid = {0.0};
  config.r2_grid = {0.0};
  config.reverse_source = true;
  Rng rng(10);
  const auto pairs = BuildTrainingPairs({trip}, vocab, config, rng);
  ASSERT_EQ(pairs.size(), 1u);
  traj::TokenSeq reversed = pairs[0].tgt;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_EQ(pairs[0].src, reversed);
}

TEST(PairsTest, SkipsDegenerateTrips) {
  geo::SpatialGrid grid({0, 0}, {1000, 100}, 100.0);
  std::vector<geo::Point> pts = {grid.CenterOf(0)};
  geo::HotCellVocab vocab(grid, pts, 1);
  traj::Trajectory tiny;
  tiny.points.push_back({50, 50});  // Single point.
  T2VecConfig config;
  Rng rng(11);
  EXPECT_TRUE(BuildTrainingPairs({tiny}, vocab, config, rng).empty());
}


TEST(EncoderDecoderTest, AttentionRunBatchGradCheck) {
  // Same full-model gradient check with the attention path enabled.
  Rng rng(13);
  T2VecConfig config = TinyConfig();
  config.use_attention = true;
  EncoderDecoder model(config, 12, rng);
  ASSERT_TRUE(model.has_attention());
  NllLoss loss(&model.projection());

  TokenPair p1{{4, 5, 6, 7}, {8, 9, 10}};
  TokenPair p2{{5, 7}, {9, 11, 4, 5}};
  const Batch batch = BuildBatch({&p1, &p2});

  auto loss_fn = [&]() {
    return model.RunBatch(batch, &loss, /*accumulate_grads=*/false) /
           static_cast<double>(batch.batch_size);
  };

  for (nn::Parameter* p : model.Params()) p->ZeroGrad();
  model.RunBatch(batch, &loss, /*accumulate_grads=*/true);

  for (nn::Parameter* p : model.Params()) {
    ExpectGradientsMatch(&p->value, p->grad, loss_fn, 1e-2f, 3e-2, 8,
                         /*seed=*/p->value.size() + 1);
  }
}

TEST(EncoderDecoderTest, AttentionTrainingStepReducesLoss) {
  Rng rng(14);
  T2VecConfig config = TinyConfig();
  config.use_attention = true;
  EncoderDecoder model(config, 12, rng);
  NllLoss loss(&model.projection());
  nn::Adam adam(model.Params(), 5e-3f);

  TokenPair p{{4, 5, 6, 7}, {8, 9, 10, 11}};
  const Batch batch = BuildBatch({&p});
  const double initial = model.RunBatch(batch, &loss, false);
  for (int step = 0; step < 120; ++step) {
    adam.ZeroGrad();
    model.RunBatch(batch, &loss, true);
    adam.Step();
  }
  EXPECT_LT(model.RunBatch(batch, &loss, false), 0.5 * initial);
}

TEST(EncoderDecoderTest, AttentionEncodeUnchanged) {
  // The representation is still the encoder final state: identical weights
  // aside, enabling attention must not change EncodeBatch results.
  Rng rng1(15), rng2(15);
  T2VecConfig plain = TinyConfig();
  T2VecConfig attn = TinyConfig();
  attn.use_attention = true;
  EncoderDecoder a(plain, 12, rng1);
  EncoderDecoder b(attn, 12, rng2);
  // Same seed => identical embedding + encoder weights (attention params
  // are constructed after them).
  const traj::TokenSeq seq = {4, 5, 6, 7};
  const nn::Matrix va = a.EncodeBatch({seq});
  const nn::Matrix vb = b.EncodeBatch({seq});
  EXPECT_LT(nn::MaxAbsDiff(va, vb), 1e-6f);
}

}  // namespace
}  // namespace t2vec::core
