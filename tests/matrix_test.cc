#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/matrix.h"
#include "nn/ops.h"
#include "nn/parameter.h"

namespace t2vec::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, float scale = 1.0f) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return m;
}

// Reference O(mnk) triple-loop GEMM against which the kernels are checked.
Matrix NaiveGemm(const Matrix& a, const Matrix& b, bool trans_a,
                 bool trans_b) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t k = trans_a ? a.rows() : a.cols();
  const size_t n = trans_b ? b.rows() : b.cols();
  Matrix out(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a.At(p, i) : a.At(i, p);
        const float bv = trans_b ? b.At(j, p) : b.At(p, j);
        acc += static_cast<double>(av) * bv;
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
  m.At(1, 2) = 5.0f;
  EXPECT_EQ(m(1, 2), 5.0f);
  EXPECT_EQ(m.Row(1)[2], 5.0f);
}

TEST(MatrixTest, FillAndZero) {
  Matrix m(2, 2, 7.0f);
  EXPECT_EQ(m(0, 0), 7.0f);
  m.SetZero();
  EXPECT_EQ(m(1, 1), 0.0f);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 3);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
}

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GemmShapeTest, GemmMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(42 + m * 100 + k * 10 + n);
  Matrix a = RandomMatrix(m, k, rng);
  Matrix b = RandomMatrix(k, n, rng);
  Matrix out(m, n);
  Gemm(a, b, &out);
  EXPECT_LT(MaxAbsDiff(out, NaiveGemm(a, b, false, false)), 1e-4f);
}

TEST_P(GemmShapeTest, GemmTransAMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(17 + m);
  Matrix a = RandomMatrix(k, m, rng);  // a^T is m x k
  Matrix b = RandomMatrix(k, n, rng);
  Matrix out(m, n);
  GemmTransA(a, b, &out);
  EXPECT_LT(MaxAbsDiff(out, NaiveGemm(a, b, true, false)), 1e-4f);
}

TEST_P(GemmShapeTest, GemmTransBMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(29 + n);
  Matrix a = RandomMatrix(m, k, rng);
  Matrix b = RandomMatrix(n, k, rng);  // b^T is k x n
  Matrix out(m, n);
  GemmTransB(a, b, &out);
  EXPECT_LT(MaxAbsDiff(out, NaiveGemm(a, b, false, true)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 64, 33), std::make_tuple(33, 1, 17),
                      std::make_tuple(31, 37, 41)));

// Exhaustive kernel sweep over every m, k, n in {1, 7, 8, 9, 64, 65}: the
// values straddle the micro-tile (8), vector (8/16), and panel boundaries,
// so every edge path in the blocked kernels runs. Each kernel is checked
// against the double-accumulation reference, including alpha/beta outside
// {0, 1}.
TEST(GemmKernelSweep, AllShapesAllKernels) {
  const size_t dims[] = {1, 7, 8, 9, 64, 65};
  const struct {
    float alpha, beta;
  } scales[] = {{1.0f, 0.0f}, {2.0f, 1.0f}, {0.5f, -1.5f}};
  Rng rng(99);
  for (size_t m : dims) {
    for (size_t k : dims) {
      for (size_t n : dims) {
        const Matrix a = RandomMatrix(m, k, rng);
        const Matrix b = RandomMatrix(k, n, rng);
        const Matrix at = RandomMatrix(k, m, rng);  // a^T layout for TransA.
        const Matrix bt = RandomMatrix(n, k, rng);  // b^T layout for TransB.
        const Matrix base = RandomMatrix(m, n, rng);
        // Accumulated rounding grows with k; 1e-4 covers k = 65 comfortably.
        const float tol = 1e-4f;
        for (const auto& s : scales) {
          auto expect = [&](const Matrix& naive) {
            Matrix e = base;
            for (size_t i = 0; i < e.size(); ++i) {
              e.data()[i] =
                  s.alpha * naive.data()[i] + s.beta * base.data()[i];
            }
            return e;
          };
          Matrix out = base;
          Gemm(a, b, &out, s.alpha, s.beta);
          EXPECT_LT(MaxAbsDiff(out, expect(NaiveGemm(a, b, false, false))),
                    tol)
              << "Gemm " << m << "x" << k << "x" << n << " alpha=" << s.alpha
              << " beta=" << s.beta;
          out = base;
          GemmTransA(at, b, &out, s.alpha, s.beta);
          EXPECT_LT(MaxAbsDiff(out, expect(NaiveGemm(at, b, true, false))),
                    tol)
              << "GemmTransA " << m << "x" << k << "x" << n;
          out = base;
          GemmTransB(a, bt, &out, s.alpha, s.beta);
          EXPECT_LT(MaxAbsDiff(out, expect(NaiveGemm(a, bt, false, true))),
                    tol)
              << "GemmTransB " << m << "x" << k << "x" << n;
        }
      }
    }
  }
}

// The determinism contract (nn/matrix.h): a parallel run partitions output
// rows only, so it must produce the same bits as the serial run at any
// thread count. The shape is chosen to clear the parallelism thresholds
// (flops and row count).
TEST(GemmKernelSweep, ParallelBitIdenticalToSerial) {
  Rng rng(123);
  const size_t m = 97, k = 130, n = 67;  // 2*m*k*n ≈ 1.7e6 flops.
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  const Matrix at = RandomMatrix(k, m, rng);
  const Matrix bt = RandomMatrix(n, k, rng);
  const Matrix base = RandomMatrix(m, n, rng);

  Matrix ref_gemm, ref_ta, ref_tb;
  {
    ScopedNumThreads serial(1);
    ref_gemm = base;
    Gemm(a, b, &ref_gemm, 1.3f, 0.7f);
    ref_ta = base;
    GemmTransA(at, b, &ref_ta, 1.3f, 0.7f);
    ref_tb = base;
    GemmTransB(a, bt, &ref_tb, 1.3f, 0.7f);
  }
  for (int threads : {2, 3, 8}) {
    ScopedNumThreads scope(threads);
    Matrix out = base;
    Gemm(a, b, &out, 1.3f, 0.7f);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out.data()[i], ref_gemm.data()[i]) << "Gemm threads=" << threads;
    }
    out = base;
    GemmTransA(at, b, &out, 1.3f, 0.7f);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out.data()[i], ref_ta.data()[i])
          << "GemmTransA threads=" << threads;
    }
    out = base;
    GemmTransB(a, bt, &out, 1.3f, 0.7f);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out.data()[i], ref_tb.data()[i])
          << "GemmTransB threads=" << threads;
    }
  }
}

// A segmented GemmTransBV call must equal chaining one beta=1 call per
// k-segment bit-for-bit — this is the property that makes the fused packed
// backward GEMMs reproduce the per-gate ones exactly.
TEST(GemmKernelSweep, SegmentedTransBEqualsChainedCalls) {
  Rng rng(7);
  const size_t m = 9, n = 11, seg = 16, nseg = 3, k = seg * nseg;
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix bt = RandomMatrix(n, k, rng);
  const Matrix base = RandomMatrix(m, n, rng);

  Matrix chained = base;
  for (size_t s = 0; s < nseg; ++s) {
    GemmTransBV(ColBlock(a, s * seg, seg), ColBlock(bt, s * seg, seg),
                chained, 1.3f, s == 0 ? 0.7f : 1.0f);
  }
  Matrix fused = base;
  GemmTransBV(a, bt, fused, 1.3f, 0.7f, seg);
  for (size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused.data()[i], chained.data()[i]) << "index " << i;
  }
}

TEST(MatrixTest, DotAndSquaredNormMatchDoubleReference) {
  Rng rng(31);
  const Matrix a = RandomMatrix(5, 103, rng);
  const Matrix b = RandomMatrix(5, 103, rng);
  double norm = 0.0, dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    norm += static_cast<double>(a.data()[i]) * a.data()[i];
    dot += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  EXPECT_NEAR(a.SquaredNorm(), norm, 1e-9 * std::max(1.0, norm));
  EXPECT_NEAR(Dot(a, b), dot, 1e-9 * std::max(1.0, std::fabs(dot)));
}

TEST(MatrixTest, ToStringTruncatesAndFormats) {
  Matrix m(5, 7);
  m(0, 0) = 1.5f;
  m(4, 6) = -2.25f;
  const std::string full = m.ToString(5, 7);
  EXPECT_NE(full.find("[5 x 7]"), std::string::npos);
  EXPECT_NE(full.find("1.5000"), std::string::npos);
  EXPECT_NE(full.find("-2.2500"), std::string::npos);
  EXPECT_EQ(full.find("..."), std::string::npos);

  const std::string clipped = m.ToString(2, 3);
  EXPECT_NE(clipped.find("[5 x 7]"), std::string::npos);
  EXPECT_NE(clipped.find("..."), std::string::npos);
  EXPECT_EQ(clipped.find("-2.2500"), std::string::npos);
}

TEST(GemmTest, AlphaBetaAccumulate) {
  Rng rng(5);
  Matrix a = RandomMatrix(4, 3, rng);
  Matrix b = RandomMatrix(3, 5, rng);
  Matrix base = RandomMatrix(4, 5, rng);
  Matrix out = base;
  Gemm(a, b, &out, 2.0f, 1.0f);  // out = 2ab + base

  Matrix expected = NaiveGemm(a, b, false, false);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] = 2.0f * expected.data()[i] + base.data()[i];
  }
  EXPECT_LT(MaxAbsDiff(out, expected), 1e-4f);
}

TEST(ElementwiseTest, AddAxpyScale) {
  Rng rng(9);
  Matrix a = RandomMatrix(3, 3, rng);
  Matrix b = RandomMatrix(3, 3, rng);
  Matrix sum;
  Add(a, b, &sum);
  for (size_t i = 0; i < sum.size(); ++i) {
    EXPECT_FLOAT_EQ(sum.data()[i], a.data()[i] + b.data()[i]);
  }
  Matrix c = a;
  Axpy(0.5f, b, &c);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], a.data()[i] + 0.5f * b.data()[i]);
  }
  Scale(&c, 2.0f);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], 2.0f * (a.data()[i] + 0.5f * b.data()[i]));
  }
}

TEST(ElementwiseTest, RowBroadcastAndSumRows) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 4;
  Matrix bias(1, 3);
  bias(0, 0) = 10;
  bias(0, 1) = 20;
  bias(0, 2) = 30;
  AddRowBroadcast(&m, bias);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 20.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 34.0f);

  Matrix col_sum(1, 3);
  SumRowsInto(m, &col_sum);
  EXPECT_FLOAT_EQ(col_sum(0, 0), 21.0f);
  EXPECT_FLOAT_EQ(col_sum(0, 1), 40.0f);
  EXPECT_FLOAT_EQ(col_sum(0, 2), 64.0f);
}

TEST(ElementwiseTest, Hadamard) {
  Matrix a(1, 3), b(1, 3);
  for (int i = 0; i < 3; ++i) {
    a(0, i) = static_cast<float>(i + 1);
    b(0, i) = 2.0f;
  }
  Matrix out;
  Hadamard(a, b, &out);
  EXPECT_FLOAT_EQ(out(0, 2), 6.0f);
  HadamardAccum(a, b, &out);  // out += a*b -> 12
  EXPECT_FLOAT_EQ(out(0, 2), 12.0f);
}

TEST(OpsTest, SigmoidValues) {
  Matrix in(1, 3);
  in(0, 0) = 0.0f;
  in(0, 1) = 100.0f;
  in(0, 2) = -100.0f;
  Matrix out;
  Sigmoid(in, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.5f);
  EXPECT_NEAR(out(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(out(0, 2), 0.0f, 1e-6f);
}

TEST(OpsTest, TanhValues) {
  Matrix in(1, 2);
  in(0, 0) = 0.0f;
  in(0, 1) = 1.0f;
  Matrix out;
  Tanh(in, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
  EXPECT_NEAR(out(0, 1), std::tanh(1.0f), 1e-6f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix in = RandomMatrix(5, 17, rng, 10.0f);
  Matrix out;
  SoftmaxRows(in, &out);
  for (size_t r = 0; r < out.rows(); ++r) {
    double total = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_GT(out(r, c), 0.0f);
      total += out(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(OpsTest, SoftmaxNumericallyStable) {
  Matrix in(1, 2);
  in(0, 0) = 1000.0f;
  in(0, 1) = 1000.0f;
  Matrix out;
  SoftmaxRows(in, &out);
  EXPECT_NEAR(out(0, 0), 0.5f, 1e-6f);
}

TEST(OpsTest, LogSoftmaxConsistentWithSoftmax) {
  Rng rng(4);
  Matrix in = RandomMatrix(3, 9, rng, 5.0f);
  Matrix sm, lsm;
  SoftmaxRows(in, &sm);
  LogSoftmaxRows(in, &lsm);
  for (size_t i = 0; i < sm.size(); ++i) {
    EXPECT_NEAR(std::log(sm.data()[i]), lsm.data()[i], 1e-4);
  }
}

TEST(OpsTest, ActivationBackwardFormulas) {
  // For y = sigmoid(x): dy/dx = y(1-y); for y = tanh(x): 1 - y^2.
  Matrix y(1, 2);
  y(0, 0) = 0.3f;
  y(0, 1) = 0.8f;
  Matrix d_out(1, 2, 1.0f);
  Matrix d_in;
  SigmoidBackward(y, d_out, &d_in);
  EXPECT_NEAR(d_in(0, 0), 0.3f * 0.7f, 1e-6f);
  TanhBackward(y, d_out, &d_in);
  EXPECT_NEAR(d_in(0, 1), 1.0f - 0.64f, 1e-6f);
}

TEST(ParameterTest, ClipGradNorm) {
  Parameter p("p", 1, 2);
  p.grad(0, 0) = 3.0f;
  p.grad(0, 1) = 4.0f;  // norm 5
  ParamList params = {&p};
  const double pre = ClipGradNorm(params, 2.5);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(std::sqrt(p.grad.SquaredNorm()), 2.5, 1e-5);
  // Below threshold: untouched.
  const double pre2 = ClipGradNorm(params, 100.0);
  EXPECT_NEAR(pre2, 2.5, 1e-5);
  EXPECT_NEAR(std::sqrt(p.grad.SquaredNorm()), 2.5, 1e-5);
}

TEST(ParameterTest, XavierScale) {
  Rng rng(8);
  Matrix m(100, 50);
  InitXavier(&m, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  float max_abs = 0.0f;
  for (size_t i = 0; i < m.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(m.data()[i]));
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, 0.5f * bound);  // Should come close to the bound.
}

TEST(ParameterTest, TotalParamCount) {
  Parameter a("a", 2, 3), b("b", 1, 4);
  EXPECT_EQ(TotalParamCount({&a, &b}), 10u);
}

}  // namespace
}  // namespace t2vec::nn
