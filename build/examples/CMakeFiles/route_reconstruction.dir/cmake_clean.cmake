file(REMOVE_RECURSE
  "CMakeFiles/route_reconstruction.dir/route_reconstruction.cpp.o"
  "CMakeFiles/route_reconstruction.dir/route_reconstruction.cpp.o.d"
  "route_reconstruction"
  "route_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
