# Empty compiler generated dependencies file for route_reconstruction.
# This may be replaced when dependencies are built.
