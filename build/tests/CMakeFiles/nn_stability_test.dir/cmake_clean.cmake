file(REMOVE_RECURSE
  "CMakeFiles/nn_stability_test.dir/nn_stability_test.cc.o"
  "CMakeFiles/nn_stability_test.dir/nn_stability_test.cc.o.d"
  "nn_stability_test"
  "nn_stability_test.pdb"
  "nn_stability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
