# Empty dependencies file for nn_stability_test.
# This may be replaced when dependencies are built.
