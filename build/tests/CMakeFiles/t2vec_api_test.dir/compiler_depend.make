# Empty compiler generated dependencies file for t2vec_api_test.
# This may be replaced when dependencies are built.
