file(REMOVE_RECURSE
  "CMakeFiles/t2vec_api_test.dir/t2vec_api_test.cc.o"
  "CMakeFiles/t2vec_api_test.dir/t2vec_api_test.cc.o.d"
  "t2vec_api_test"
  "t2vec_api_test.pdb"
  "t2vec_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
