file(REMOVE_RECURSE
  "CMakeFiles/core_loss_test.dir/core_loss_test.cc.o"
  "CMakeFiles/core_loss_test.dir/core_loss_test.cc.o.d"
  "core_loss_test"
  "core_loss_test.pdb"
  "core_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
