# Empty dependencies file for csv_bootstrap_test.
# This may be replaced when dependencies are built.
