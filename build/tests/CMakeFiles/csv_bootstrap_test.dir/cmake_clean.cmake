file(REMOVE_RECURSE
  "CMakeFiles/csv_bootstrap_test.dir/csv_bootstrap_test.cc.o"
  "CMakeFiles/csv_bootstrap_test.dir/csv_bootstrap_test.cc.o.d"
  "csv_bootstrap_test"
  "csv_bootstrap_test.pdb"
  "csv_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
