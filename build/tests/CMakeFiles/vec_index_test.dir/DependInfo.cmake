
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vec_index_test.cc" "tests/CMakeFiles/vec_index_test.dir/vec_index_test.cc.o" "gcc" "tests/CMakeFiles/vec_index_test.dir/vec_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/t2vec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/t2vec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/t2vec_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/t2vec_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/t2vec_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/t2vec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
