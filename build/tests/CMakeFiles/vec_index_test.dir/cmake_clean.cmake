file(REMOVE_RECURSE
  "CMakeFiles/vec_index_test.dir/vec_index_test.cc.o"
  "CMakeFiles/vec_index_test.dir/vec_index_test.cc.o.d"
  "vec_index_test"
  "vec_index_test.pdb"
  "vec_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
