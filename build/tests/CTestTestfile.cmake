# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/gru_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/traj_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/core_loss_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/vec_index_test[1]_include.cmake")
include("/root/repo/build/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/t2vec_api_test[1]_include.cmake")
include("/root/repo/build/tests/nn_stability_test[1]_include.cmake")
include("/root/repo/build/tests/csv_bootstrap_test[1]_include.cmake")
include("/root/repo/build/tests/attention_test[1]_include.cmake")
