file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_crossdist.dir/bench_table6_crossdist.cc.o"
  "CMakeFiles/bench_table6_crossdist.dir/bench_table6_crossdist.cc.o.d"
  "bench_table6_crossdist"
  "bench_table6_crossdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_crossdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
