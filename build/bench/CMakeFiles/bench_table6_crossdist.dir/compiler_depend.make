# Empty compiler generated dependencies file for bench_table6_crossdist.
# This may be replaced when dependencies are built.
