# Empty dependencies file for bench_table4_downsampling.
# This may be replaced when dependencies are built.
