file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_downsampling.dir/bench_table4_downsampling.cc.o"
  "CMakeFiles/bench_table4_downsampling.dir/bench_table4_downsampling.cc.o.d"
  "bench_table4_downsampling"
  "bench_table4_downsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_downsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
