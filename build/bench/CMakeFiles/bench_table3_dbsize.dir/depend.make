# Empty dependencies file for bench_table3_dbsize.
# This may be replaced when dependencies are built.
