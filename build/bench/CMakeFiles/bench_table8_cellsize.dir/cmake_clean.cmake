file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_cellsize.dir/bench_table8_cellsize.cc.o"
  "CMakeFiles/bench_table8_cellsize.dir/bench_table8_cellsize.cc.o.d"
  "bench_table8_cellsize"
  "bench_table8_cellsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_cellsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
