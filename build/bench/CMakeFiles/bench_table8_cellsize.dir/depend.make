# Empty dependencies file for bench_table8_cellsize.
# This may be replaced when dependencies are built.
