file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_trainsize.dir/bench_fig7_trainsize.cc.o"
  "CMakeFiles/bench_fig7_trainsize.dir/bench_fig7_trainsize.cc.o.d"
  "bench_fig7_trainsize"
  "bench_fig7_trainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_trainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
