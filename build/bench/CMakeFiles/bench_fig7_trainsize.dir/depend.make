# Empty dependencies file for bench_fig7_trainsize.
# This may be replaced when dependencies are built.
