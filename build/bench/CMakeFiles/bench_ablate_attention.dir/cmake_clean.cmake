file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_attention.dir/bench_ablate_attention.cc.o"
  "CMakeFiles/bench_ablate_attention.dir/bench_ablate_attention.cc.o.d"
  "bench_ablate_attention"
  "bench_ablate_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
