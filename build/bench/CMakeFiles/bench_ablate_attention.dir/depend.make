# Empty dependencies file for bench_ablate_attention.
# This may be replaced when dependencies are built.
