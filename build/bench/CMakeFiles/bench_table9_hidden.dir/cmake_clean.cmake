file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_hidden.dir/bench_table9_hidden.cc.o"
  "CMakeFiles/bench_table9_hidden.dir/bench_table9_hidden.cc.o.d"
  "bench_table9_hidden"
  "bench_table9_hidden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_hidden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
