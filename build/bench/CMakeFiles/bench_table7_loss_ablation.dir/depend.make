# Empty dependencies file for bench_table7_loss_ablation.
# This may be replaced when dependencies are built.
