file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_distortion.dir/bench_table5_distortion.cc.o"
  "CMakeFiles/bench_table5_distortion.dir/bench_table5_distortion.cc.o.d"
  "bench_table5_distortion"
  "bench_table5_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
