# Empty compiler generated dependencies file for t2vec_cli.
# This may be replaced when dependencies are built.
