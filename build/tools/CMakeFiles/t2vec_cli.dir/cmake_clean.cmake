file(REMOVE_RECURSE
  "CMakeFiles/t2vec_cli.dir/t2vec_cli.cc.o"
  "CMakeFiles/t2vec_cli.dir/t2vec_cli.cc.o.d"
  "t2vec_cli"
  "t2vec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
