file(REMOVE_RECURSE
  "libt2vec_common.a"
)
