file(REMOVE_RECURSE
  "CMakeFiles/t2vec_common.dir/rng.cc.o"
  "CMakeFiles/t2vec_common.dir/rng.cc.o.d"
  "CMakeFiles/t2vec_common.dir/status.cc.o"
  "CMakeFiles/t2vec_common.dir/status.cc.o.d"
  "libt2vec_common.a"
  "libt2vec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
