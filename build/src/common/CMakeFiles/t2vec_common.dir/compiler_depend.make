# Empty compiler generated dependencies file for t2vec_common.
# This may be replaced when dependencies are built.
