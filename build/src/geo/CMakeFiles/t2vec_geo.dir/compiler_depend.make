# Empty compiler generated dependencies file for t2vec_geo.
# This may be replaced when dependencies are built.
