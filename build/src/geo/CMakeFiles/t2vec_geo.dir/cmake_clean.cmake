file(REMOVE_RECURSE
  "CMakeFiles/t2vec_geo.dir/cell_knn.cc.o"
  "CMakeFiles/t2vec_geo.dir/cell_knn.cc.o.d"
  "CMakeFiles/t2vec_geo.dir/grid.cc.o"
  "CMakeFiles/t2vec_geo.dir/grid.cc.o.d"
  "CMakeFiles/t2vec_geo.dir/point.cc.o"
  "CMakeFiles/t2vec_geo.dir/point.cc.o.d"
  "CMakeFiles/t2vec_geo.dir/projection.cc.o"
  "CMakeFiles/t2vec_geo.dir/projection.cc.o.d"
  "CMakeFiles/t2vec_geo.dir/vocab.cc.o"
  "CMakeFiles/t2vec_geo.dir/vocab.cc.o.d"
  "libt2vec_geo.a"
  "libt2vec_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
