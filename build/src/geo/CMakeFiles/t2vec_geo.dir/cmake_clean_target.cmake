file(REMOVE_RECURSE
  "libt2vec_geo.a"
)
