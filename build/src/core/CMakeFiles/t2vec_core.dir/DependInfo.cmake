
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cell_pretrain.cc" "src/core/CMakeFiles/t2vec_core.dir/cell_pretrain.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/cell_pretrain.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/t2vec_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/config.cc.o.d"
  "/root/repo/src/core/decoder.cc" "src/core/CMakeFiles/t2vec_core.dir/decoder.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/decoder.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/core/CMakeFiles/t2vec_core.dir/loss.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/loss.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/t2vec_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/model.cc.o.d"
  "/root/repo/src/core/pairs.cc" "src/core/CMakeFiles/t2vec_core.dir/pairs.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/pairs.cc.o.d"
  "/root/repo/src/core/t2vec.cc" "src/core/CMakeFiles/t2vec_core.dir/t2vec.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/t2vec.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/t2vec_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/vec_index.cc" "src/core/CMakeFiles/t2vec_core.dir/vec_index.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/vec_index.cc.o.d"
  "/root/repo/src/core/vrnn.cc" "src/core/CMakeFiles/t2vec_core.dir/vrnn.cc.o" "gcc" "src/core/CMakeFiles/t2vec_core.dir/vrnn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/t2vec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/t2vec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/t2vec_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/t2vec_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/t2vec_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
