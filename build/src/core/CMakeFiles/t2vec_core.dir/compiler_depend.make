# Empty compiler generated dependencies file for t2vec_core.
# This may be replaced when dependencies are built.
