file(REMOVE_RECURSE
  "CMakeFiles/t2vec_core.dir/cell_pretrain.cc.o"
  "CMakeFiles/t2vec_core.dir/cell_pretrain.cc.o.d"
  "CMakeFiles/t2vec_core.dir/config.cc.o"
  "CMakeFiles/t2vec_core.dir/config.cc.o.d"
  "CMakeFiles/t2vec_core.dir/decoder.cc.o"
  "CMakeFiles/t2vec_core.dir/decoder.cc.o.d"
  "CMakeFiles/t2vec_core.dir/loss.cc.o"
  "CMakeFiles/t2vec_core.dir/loss.cc.o.d"
  "CMakeFiles/t2vec_core.dir/model.cc.o"
  "CMakeFiles/t2vec_core.dir/model.cc.o.d"
  "CMakeFiles/t2vec_core.dir/pairs.cc.o"
  "CMakeFiles/t2vec_core.dir/pairs.cc.o.d"
  "CMakeFiles/t2vec_core.dir/t2vec.cc.o"
  "CMakeFiles/t2vec_core.dir/t2vec.cc.o.d"
  "CMakeFiles/t2vec_core.dir/trainer.cc.o"
  "CMakeFiles/t2vec_core.dir/trainer.cc.o.d"
  "CMakeFiles/t2vec_core.dir/vec_index.cc.o"
  "CMakeFiles/t2vec_core.dir/vec_index.cc.o.d"
  "CMakeFiles/t2vec_core.dir/vrnn.cc.o"
  "CMakeFiles/t2vec_core.dir/vrnn.cc.o.d"
  "libt2vec_core.a"
  "libt2vec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
