file(REMOVE_RECURSE
  "libt2vec_core.a"
)
