# Empty compiler generated dependencies file for t2vec_nn.
# This may be replaced when dependencies are built.
