
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/t2vec_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/t2vec_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/t2vec_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/t2vec_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/t2vec_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/t2vec_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/t2vec_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/t2vec_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/t2vec_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter.cc" "src/nn/CMakeFiles/t2vec_nn.dir/parameter.cc.o" "gcc" "src/nn/CMakeFiles/t2vec_nn.dir/parameter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/t2vec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
