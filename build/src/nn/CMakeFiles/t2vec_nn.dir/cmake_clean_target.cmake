file(REMOVE_RECURSE
  "libt2vec_nn.a"
)
