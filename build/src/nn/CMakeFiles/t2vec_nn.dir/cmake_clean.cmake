file(REMOVE_RECURSE
  "CMakeFiles/t2vec_nn.dir/attention.cc.o"
  "CMakeFiles/t2vec_nn.dir/attention.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/checkpoint.cc.o"
  "CMakeFiles/t2vec_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/embedding.cc.o"
  "CMakeFiles/t2vec_nn.dir/embedding.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/gru.cc.o"
  "CMakeFiles/t2vec_nn.dir/gru.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/linear.cc.o"
  "CMakeFiles/t2vec_nn.dir/linear.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/loss.cc.o"
  "CMakeFiles/t2vec_nn.dir/loss.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/matrix.cc.o"
  "CMakeFiles/t2vec_nn.dir/matrix.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/ops.cc.o"
  "CMakeFiles/t2vec_nn.dir/ops.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/optimizer.cc.o"
  "CMakeFiles/t2vec_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/t2vec_nn.dir/parameter.cc.o"
  "CMakeFiles/t2vec_nn.dir/parameter.cc.o.d"
  "libt2vec_nn.a"
  "libt2vec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
