file(REMOVE_RECURSE
  "libt2vec_eval.a"
)
