file(REMOVE_RECURSE
  "CMakeFiles/t2vec_eval.dir/bootstrap.cc.o"
  "CMakeFiles/t2vec_eval.dir/bootstrap.cc.o.d"
  "CMakeFiles/t2vec_eval.dir/cache.cc.o"
  "CMakeFiles/t2vec_eval.dir/cache.cc.o.d"
  "CMakeFiles/t2vec_eval.dir/experiments.cc.o"
  "CMakeFiles/t2vec_eval.dir/experiments.cc.o.d"
  "CMakeFiles/t2vec_eval.dir/metrics.cc.o"
  "CMakeFiles/t2vec_eval.dir/metrics.cc.o.d"
  "CMakeFiles/t2vec_eval.dir/table.cc.o"
  "CMakeFiles/t2vec_eval.dir/table.cc.o.d"
  "libt2vec_eval.a"
  "libt2vec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
