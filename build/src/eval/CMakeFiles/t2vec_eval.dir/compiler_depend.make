# Empty compiler generated dependencies file for t2vec_eval.
# This may be replaced when dependencies are built.
