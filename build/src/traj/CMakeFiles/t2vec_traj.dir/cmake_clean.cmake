file(REMOVE_RECURSE
  "CMakeFiles/t2vec_traj.dir/csv.cc.o"
  "CMakeFiles/t2vec_traj.dir/csv.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/dataset.cc.o"
  "CMakeFiles/t2vec_traj.dir/dataset.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/generator.cc.o"
  "CMakeFiles/t2vec_traj.dir/generator.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/road_network.cc.o"
  "CMakeFiles/t2vec_traj.dir/road_network.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/simplify.cc.o"
  "CMakeFiles/t2vec_traj.dir/simplify.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/tokenizer.cc.o"
  "CMakeFiles/t2vec_traj.dir/tokenizer.cc.o.d"
  "CMakeFiles/t2vec_traj.dir/transforms.cc.o"
  "CMakeFiles/t2vec_traj.dir/transforms.cc.o.d"
  "libt2vec_traj.a"
  "libt2vec_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
