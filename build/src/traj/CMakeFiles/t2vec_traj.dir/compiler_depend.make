# Empty compiler generated dependencies file for t2vec_traj.
# This may be replaced when dependencies are built.
