file(REMOVE_RECURSE
  "libt2vec_traj.a"
)
