
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/csv.cc" "src/traj/CMakeFiles/t2vec_traj.dir/csv.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/csv.cc.o.d"
  "/root/repo/src/traj/dataset.cc" "src/traj/CMakeFiles/t2vec_traj.dir/dataset.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/dataset.cc.o.d"
  "/root/repo/src/traj/generator.cc" "src/traj/CMakeFiles/t2vec_traj.dir/generator.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/generator.cc.o.d"
  "/root/repo/src/traj/road_network.cc" "src/traj/CMakeFiles/t2vec_traj.dir/road_network.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/road_network.cc.o.d"
  "/root/repo/src/traj/simplify.cc" "src/traj/CMakeFiles/t2vec_traj.dir/simplify.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/simplify.cc.o.d"
  "/root/repo/src/traj/tokenizer.cc" "src/traj/CMakeFiles/t2vec_traj.dir/tokenizer.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/tokenizer.cc.o.d"
  "/root/repo/src/traj/transforms.cc" "src/traj/CMakeFiles/t2vec_traj.dir/transforms.cc.o" "gcc" "src/traj/CMakeFiles/t2vec_traj.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/t2vec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/t2vec_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
