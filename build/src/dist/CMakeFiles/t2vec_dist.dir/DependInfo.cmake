
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/classic.cc" "src/dist/CMakeFiles/t2vec_dist.dir/classic.cc.o" "gcc" "src/dist/CMakeFiles/t2vec_dist.dir/classic.cc.o.d"
  "/root/repo/src/dist/cms.cc" "src/dist/CMakeFiles/t2vec_dist.dir/cms.cc.o" "gcc" "src/dist/CMakeFiles/t2vec_dist.dir/cms.cc.o.d"
  "/root/repo/src/dist/edwp.cc" "src/dist/CMakeFiles/t2vec_dist.dir/edwp.cc.o" "gcc" "src/dist/CMakeFiles/t2vec_dist.dir/edwp.cc.o.d"
  "/root/repo/src/dist/knn.cc" "src/dist/CMakeFiles/t2vec_dist.dir/knn.cc.o" "gcc" "src/dist/CMakeFiles/t2vec_dist.dir/knn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/t2vec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/t2vec_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/t2vec_traj.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
