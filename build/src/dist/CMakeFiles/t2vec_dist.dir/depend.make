# Empty dependencies file for t2vec_dist.
# This may be replaced when dependencies are built.
