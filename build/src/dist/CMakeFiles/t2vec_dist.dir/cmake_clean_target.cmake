file(REMOVE_RECURSE
  "libt2vec_dist.a"
)
