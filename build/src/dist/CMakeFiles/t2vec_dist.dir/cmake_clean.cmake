file(REMOVE_RECURSE
  "CMakeFiles/t2vec_dist.dir/classic.cc.o"
  "CMakeFiles/t2vec_dist.dir/classic.cc.o.d"
  "CMakeFiles/t2vec_dist.dir/cms.cc.o"
  "CMakeFiles/t2vec_dist.dir/cms.cc.o.d"
  "CMakeFiles/t2vec_dist.dir/edwp.cc.o"
  "CMakeFiles/t2vec_dist.dir/edwp.cc.o.d"
  "CMakeFiles/t2vec_dist.dir/knn.cc.o"
  "CMakeFiles/t2vec_dist.dir/knn.cc.o.d"
  "libt2vec_dist.a"
  "libt2vec_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2vec_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
